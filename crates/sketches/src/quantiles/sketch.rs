//! The classic mergeable Quantiles sketch implementation.

use super::ladder::{QuantilesLadder, WeightedMerge};
use crate::error::{Result, SketchError};
use crate::oracle::{DeterministicOracle, Oracle};
use std::fmt;
use std::sync::Arc;

/// Sequential mergeable Quantiles sketch (Agarwal et al., PODS 2012).
///
/// Generic over any totally ordered, cloneable item type; use
/// [`TotalF64`](super::TotalF64) for floating-point keys.
///
/// # Examples
///
/// ```
/// use fcds_sketches::quantiles::QuantilesSketch;
/// use fcds_sketches::oracle::DeterministicOracle;
///
/// let mut q = QuantilesSketch::<u64>::new(128, DeterministicOracle::new(1)).unwrap();
/// for i in 0..100_000u64 {
///     q.update(i);
/// }
/// let median = q.quantile(0.5).unwrap();
/// assert!((median as f64 - 50_000.0).abs() < 5_000.0);
/// ```
pub struct QuantilesSketch<T: Ord + Clone> {
    k: usize,
    n: u64,
    /// Unsorted incoming items, capacity `2k`.
    base_buffer: Vec<T>,
    /// `levels[i]` is either empty or a sorted run of exactly `k` items
    /// of weight `2^(i+1)` (one full base buffer of `2k` weight-1 items
    /// compacts into `k` items of weight 2 at level 0). Each run is
    /// immutable behind an `Arc`: compaction *replaces* runs, never edits
    /// them, so a [`QuantilesLadder`] snapshot shares them copy-on-write
    /// and [`Self::ladder`] is O(levels), not O(retained).
    levels: Vec<Arc<Vec<T>>>,
    /// Exact extrema (compaction can drop them from the buffers).
    min_item: Option<T>,
    max_item: Option<T>,
    oracle: Box<dyn Oracle>,
}

impl<T: Ord + Clone> fmt::Debug for QuantilesSketch<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QuantilesSketch")
            .field("k", &self.k)
            .field("n", &self.n)
            .field("base_buffer_len", &self.base_buffer.len())
            .field(
                "full_levels",
                &self
                    .levels
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| !l.is_empty())
                    .map(|(i, _)| i)
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl<T: Ord + Clone> QuantilesSketch<T> {
    /// Creates an empty sketch with accuracy parameter `k` and the given
    /// randomness oracle (one coin flip is consumed per compaction; fixing
    /// the oracle de-randomises the sketch per §4).
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::InvalidParameter`] if `k < 2`.
    pub fn new(k: usize, oracle: impl Oracle + 'static) -> Result<Self> {
        if k < 2 {
            return Err(SketchError::invalid("k", format!("must be ≥ 2, got {k}")));
        }
        Ok(QuantilesSketch {
            k,
            n: 0,
            // Capacity is only a hint — cap it so a hostile `k` decoded
            // from the wire cannot drive a giant eager allocation. The
            // buffer still grows to the full 2k on demand.
            base_buffer: Vec::with_capacity(k.saturating_mul(2).min(1 << 16)),
            levels: Vec::new(),
            min_item: None,
            max_item: None,
            oracle: Box::new(oracle),
        })
    }

    /// Creates a sketch with a deterministic oracle seeded by `seed` —
    /// convenient for tests and for the relaxation checker.
    pub fn with_seed(k: usize, seed: u64) -> Result<Self> {
        Self::new(k, DeterministicOracle::new(seed))
    }

    /// The accuracy parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of items processed (stream length `n`).
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Returns `true` if no items have been processed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The exact minimum item seen, if any.
    pub fn min_item(&self) -> Option<&T> {
        self.min_item.as_ref()
    }

    /// The exact maximum item seen, if any.
    pub fn max_item(&self) -> Option<&T> {
        self.max_item.as_ref()
    }

    /// Processes one stream element.
    pub fn update(&mut self, item: T) {
        match &mut self.min_item {
            Some(m) if *m <= item => {}
            m => *m = Some(item.clone()),
        }
        match &mut self.max_item {
            Some(m) if *m >= item => {}
            m => *m = Some(item.clone()),
        }
        self.base_buffer.push(item);
        self.n += 1;
        if self.base_buffer.len() == 2 * self.k {
            self.process_full_base_buffer();
        }
    }

    /// Sorts and compacts the full base buffer into a weight-2 carry and
    /// propagates it up the level ladder (binary-addition style).
    fn process_full_base_buffer(&mut self) {
        debug_assert_eq!(self.base_buffer.len(), 2 * self.k);
        self.base_buffer.sort();
        let carry = Self::compact(&self.base_buffer, self.oracle.flip());
        self.base_buffer.clear();
        self.promote(carry, 0);
    }

    /// Keeps every other item of a sorted `2k` buffer: the odd-indexed
    /// ones when `odd` is true, even-indexed otherwise. This is the
    /// randomised compaction whose coin §4's oracle provides.
    fn compact(sorted: &[T], odd: bool) -> Vec<T> {
        let offset = usize::from(odd);
        sorted.iter().skip(offset).step_by(2).cloned().collect()
    }

    /// Merges a sorted `k`-item carry into the ladder starting at
    /// `level`. Touched levels get *fresh* `Arc`'d runs (outstanding
    /// ladder snapshots keep the old ones); untouched levels are not
    /// visited at all.
    fn promote(&mut self, mut carry: Vec<T>, mut level: usize) {
        debug_assert_eq!(carry.len(), self.k);
        loop {
            if self.levels.len() <= level {
                self.levels.resize_with(level + 1, || Arc::new(Vec::new()));
            }
            if self.levels[level].is_empty() {
                self.levels[level] = Arc::new(carry);
                return;
            }
            let resident = std::mem::replace(&mut self.levels[level], Arc::new(Vec::new()));
            let merged = Self::merge_sorted(&resident, &carry);
            carry = Self::compact(&merged, self.oracle.flip());
            level += 1;
        }
    }

    /// Merges two sorted slices into one sorted vector.
    fn merge_sorted(a: &[T], b: &[T]) -> Vec<T> {
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut ia, mut ib) = (a.iter().peekable(), b.iter().peekable());
        loop {
            match (ia.peek(), ib.peek()) {
                (Some(x), Some(y)) => {
                    if x <= y {
                        out.push(ia.next().expect("peeked").clone());
                    } else {
                        out.push(ib.next().expect("peeked").clone());
                    }
                }
                (Some(_), None) => out.push(ia.next().expect("peeked").clone()),
                (None, Some(_)) => out.push(ib.next().expect("peeked").clone()),
                (None, None) => return out,
            }
        }
    }

    /// Merges another sketch into this one; afterwards `self` summarises
    /// the concatenation of both streams.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::Incompatible`] if the `k` parameters differ
    /// (down-sampling merges are not implemented).
    pub fn merge(&mut self, other: &QuantilesSketch<T>) -> Result<()> {
        if other.k != self.k {
            return Err(SketchError::incompatible(format!(
                "k mismatch: {} vs {}",
                self.k, other.k
            )));
        }
        for item in &other.base_buffer {
            self.update(item.clone());
        }
        for (level, buf) in other.levels.iter().enumerate() {
            if !buf.is_empty() {
                self.promote(buf.as_ref().clone(), level);
                self.n += (self.k as u64) << (level + 1);
            }
        }
        if let Some(m) = &other.min_item {
            if self.min_item.as_ref().is_none_or(|s| m < s) {
                self.min_item = Some(m.clone());
            }
        }
        if let Some(m) = &other.max_item {
            if self.max_item.as_ref().is_none_or(|s| m > s) {
                self.max_item = Some(m.clone());
            }
        }
        Ok(())
    }

    /// Resets to the empty state, keeping `k` and the oracle.
    pub fn clear(&mut self) {
        self.n = 0;
        self.base_buffer.clear();
        self.levels.clear();
        self.min_item = None;
        self.max_item = None;
    }

    /// Decomposes the sketch for serialisation (crate-internal).
    #[allow(clippy::type_complexity)]
    pub(crate) fn wire_parts(&self) -> (usize, u64, &[T], &[Arc<Vec<T>>], Option<&T>, Option<&T>) {
        (
            self.k,
            self.n,
            &self.base_buffer,
            &self.levels,
            self.min_item.as_ref(),
            self.max_item.as_ref(),
        )
    }

    /// Rebuilds a sketch from deserialised parts (crate-internal; the
    /// caller has validated the structural invariants).
    pub(crate) fn from_wire_parts(
        k: usize,
        n: u64,
        base_buffer: Vec<T>,
        levels: Vec<Vec<T>>,
        min_item: Option<T>,
        max_item: Option<T>,
        oracle: impl crate::oracle::Oracle + 'static,
    ) -> crate::error::Result<Self> {
        let mut sketch = QuantilesSketch::new(k, oracle)?;
        sketch.n = n;
        sketch.base_buffer = base_buffer;
        sketch.levels = levels.into_iter().map(Arc::new).collect();
        sketch.min_item = min_item;
        sketch.max_item = max_item;
        Ok(sketch)
    }

    /// Builds a sketch whose listed `levels` are pre-occupied: each entry
    /// `(level, items)` installs a sorted run of exactly `k` items with
    /// weight `2^(level+1)`; the base buffer starts empty and `n` is the
    /// summed weight. Bench/test support for reaching deep-ladder states
    /// (whose high levels stay frozen under further updates) without
    /// streaming `Σ k·2^(level+1)` items.
    ///
    /// # Panics
    ///
    /// Panics if a run is unsorted, has the wrong length, or repeats a
    /// level.
    #[doc(hidden)]
    pub fn with_prebuilt_levels(
        k: usize,
        seed: u64,
        prebuilt: impl IntoIterator<Item = (usize, Vec<T>)>,
    ) -> Result<Self> {
        let mut sketch = Self::with_seed(k, seed)?;
        for (level, items) in prebuilt {
            assert_eq!(
                items.len(),
                k,
                "level {level} run must hold exactly k items"
            );
            assert!(
                items.windows(2).all(|w| w[0] <= w[1]),
                "level {level} run must be sorted"
            );
            if sketch.levels.len() <= level {
                sketch
                    .levels
                    .resize_with(level + 1, || Arc::new(Vec::new()));
            }
            assert!(
                sketch.levels[level].is_empty(),
                "level {level} occupied twice"
            );
            for probe in [items.first(), items.last()].into_iter().flatten() {
                if sketch.min_item.as_ref().is_none_or(|m| probe < m) {
                    sketch.min_item = Some(probe.clone());
                }
                if sketch.max_item.as_ref().is_none_or(|m| probe > m) {
                    sketch.max_item = Some(probe.clone());
                }
            }
            sketch.n += (k as u64) << (level + 1);
            sketch.levels[level] = Arc::new(items);
        }
        debug_assert!(sketch.check_weight_invariant());
        Ok(sketch)
    }

    /// Internal invariant check used by tests: `n` must equal the summed
    /// weight of all buffers.
    #[doc(hidden)]
    pub fn check_weight_invariant(&self) -> bool {
        let mut total = self.base_buffer.len() as u64;
        for (level, buf) in self.levels.iter().enumerate() {
            if !buf.is_empty() {
                debug_assert_eq!(buf.len(), self.k);
                total += (buf.len() as u64) << (level + 1);
            }
        }
        total == self.n
    }

    /// Collects all retained `(item, weight)` pairs sorted by item — the
    /// O(retained · log retained) full rebuild. Kept as the
    /// [`Self::reader`] implementation (and as the baseline the
    /// `quantiles_prop` bench compares the ladder against); the
    /// propagation path uses [`Self::ladder`] instead.
    fn weighted_items(&self) -> Vec<(T, u64)> {
        let mut out: Vec<(T, u64)> = Vec::new();
        let mut bb = self.base_buffer.clone();
        bb.sort();
        out.extend(bb.into_iter().map(|v| (v, 1u64)));
        for (level, buf) in self.levels.iter().enumerate() {
            let w = 1u64 << (level + 1);
            out.extend(buf.iter().cloned().map(|v| (v, w)));
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Freezes the retained items into a cheap reusable reader for batch
    /// queries, re-sorting the whole retained set (O(retained · log
    /// retained)). On a hot publication path prefer [`Self::ladder`],
    /// which shares the level runs instead of copying them.
    pub fn reader(&self) -> QuantilesReader<T> {
        QuantilesReader {
            items: self.weighted_items(),
            n: self.n,
            min_item: self.min_item.clone(),
            max_item: self.max_item.clone(),
        }
    }

    /// Takes a persistent copy-on-write snapshot of the level ladder:
    /// one `Arc` clone per non-empty level plus a sort of the (≤ 2k,
    /// parameter-bounded) base buffer. Unlike [`Self::reader`] the cost
    /// is independent of how many levels the stream has accumulated,
    /// which is what keeps the concurrent engine's per-merge publication
    /// O(b + k log k) amortised instead of O(retained · log retained).
    pub fn ladder(&self) -> QuantilesLadder<T> {
        let mut base = self.base_buffer.clone();
        // Unstable sort: duplicates are indistinguishable, and this runs
        // on the per-merge publication path.
        base.sort_unstable();
        QuantilesLadder::from_parts(
            base,
            &self.levels,
            self.n,
            self.min_item.clone(),
            self.max_item.clone(),
        )
    }

    /// Returns an element whose rank approximates `phi·n` (φ ∈ [0, 1]).
    ///
    /// Returns `None` on an empty sketch. `phi = 0` returns the exact
    /// minimum and `phi = 1` the exact maximum.
    pub fn quantile(&self, phi: f64) -> Option<T> {
        self.reader().quantile(phi)
    }

    /// The approximate normalised rank of `item`: the fraction of stream
    /// elements strictly smaller than it.
    pub fn rank(&self, item: &T) -> f64 {
        self.reader().rank(item)
    }
}

/// An immutable snapshot of a quantiles sketch's retained items, suitable
/// for answering many queries without re-collecting the buffers.
#[derive(Debug, Clone)]
pub struct QuantilesReader<T: Ord + Clone> {
    /// Sorted `(item, weight)` pairs.
    items: Vec<(T, u64)>,
    n: u64,
    min_item: Option<T>,
    max_item: Option<T>,
}

impl<T: Ord + Clone> QuantilesReader<T> {
    /// Builds one flat reader from the published ladders of one or more
    /// shards — the query-time merge of the sharded concurrent engine.
    /// Heap-merges the per-level runs in item order, O(retained · log
    /// runs), instead of collect-and-re-sort.
    ///
    /// The merge is lossless in the PAC sense: each input's retained
    /// samples carry rank error at most `ε·n_i` on its own sub-stream, so
    /// the union's error on any item is at most `Σ ε·n_i = ε·n` — the
    /// same `ε` a single sketch with the same `k` guarantees on the
    /// concatenated stream.
    pub fn from_ladders<'a>(parts: impl IntoIterator<Item = &'a QuantilesLadder<T>>) -> Self
    where
        T: 'a,
    {
        let mut n = 0u64;
        let mut min_item: Option<T> = None;
        let mut max_item: Option<T> = None;
        let mut retained = 0usize;
        let ladders: Vec<&QuantilesLadder<T>> = parts.into_iter().collect();
        for p in &ladders {
            n += p.n();
            retained += p.retained();
            min_item = match (min_item.take(), p.min_item().cloned()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            max_item = match (max_item.take(), p.max_item().cloned()) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
        let mut items: Vec<(T, u64)> = Vec::with_capacity(retained);
        items.extend(WeightedMerge::new(ladders).map(|(v, w)| (v.clone(), w)));
        QuantilesReader {
            items,
            n,
            min_item,
            max_item,
        }
    }

    /// Merges several flat readers into one summary of the concatenated
    /// streams (collect-and-sort; see [`Self::from_ladders`] for the
    /// run-aware merge and the losslessness argument).
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a Self>) -> Self
    where
        T: 'a,
    {
        let mut items: Vec<(T, u64)> = Vec::new();
        let mut n = 0u64;
        let mut min_item: Option<T> = None;
        let mut max_item: Option<T> = None;
        for p in parts {
            items.extend(p.items.iter().cloned());
            n += p.n;
            min_item = match (min_item.take(), p.min_item.clone()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            max_item = match (max_item.take(), p.max_item.clone()) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
        items.sort_by(|a, b| a.0.cmp(&b.0));
        QuantilesReader {
            items,
            n,
            min_item,
            max_item,
        }
    }

    /// Total stream length this snapshot summarises.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Returns `true` if the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// See [`QuantilesSketch::quantile`].
    pub fn quantile(&self, phi: f64) -> Option<T> {
        quantile_from_weighted(
            self.items.iter().map(|(v, w)| (v, *w)),
            self.n,
            self.min_item.as_ref(),
            self.max_item.as_ref(),
            phi,
        )
    }

    /// See [`QuantilesSketch::rank`].
    pub fn rank(&self, item: &T) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let below: u64 = self
            .items
            .iter()
            .take_while(|(v, _)| v < item)
            .map(|(_, w)| w)
            .sum();
        below as f64 / self.n as f64
    }

    /// Batch quantile query.
    pub fn quantiles(&self, phis: &[f64]) -> Vec<Option<T>> {
        phis.iter().map(|&p| self.quantile(p)).collect()
    }

    /// Cumulative distribution at the given split points: element `i` of
    /// the result is the approximate fraction of the stream `< splits[i]`,
    /// with a trailing 1.0.
    pub fn cdf(&self, splits: &[T]) -> Vec<f64> {
        let mut out: Vec<f64> = splits.iter().map(|s| self.rank(s)).collect();
        out.push(1.0);
        out
    }

    /// Probability mass between consecutive split points (complement of
    /// [`Self::cdf`]).
    pub fn pmf(&self, splits: &[T]) -> Vec<f64> {
        let cdf = self.cdf(splits);
        let mut out = Vec::with_capacity(cdf.len());
        let mut prev = 0.0;
        for c in cdf {
            out.push(c - prev);
            prev = c;
        }
        out
    }
}

/// The quantile-selection rule shared by every weighted-sample view
/// ([`QuantilesReader`] over its flat vector,
/// [`QuantilesLadder`](super::QuantilesLadder) over its heap merge):
/// walk `(item, weight)` pairs in item order and return the first item
/// whose cumulative weight reaches `⌈phi·n⌉`, with exact extrema at
/// `phi ∈ {0, 1}`. One definition keeps the two representations
/// answer-identical by construction.
pub(crate) fn quantile_from_weighted<'a, T: Ord + Clone + 'a>(
    weighted: impl Iterator<Item = (&'a T, u64)>,
    n: u64,
    min_item: Option<&T>,
    max_item: Option<&T>,
    phi: f64,
) -> Option<T> {
    if n == 0 {
        return None;
    }
    let phi = phi.clamp(0.0, 1.0);
    if phi == 0.0 {
        return min_item.cloned();
    }
    if phi == 1.0 {
        return max_item.cloned();
    }
    let target = (phi * n as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (item, w) in weighted {
        cum += w;
        if cum >= target {
            return Some(item.clone());
        }
    }
    max_item.cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantiles::epsilon_for_k;

    fn filled(k: usize, seed: u64, n: u64) -> QuantilesSketch<u64> {
        let mut q = QuantilesSketch::with_seed(k, seed).unwrap();
        for i in 0..n {
            q.update(i);
        }
        q
    }

    #[test]
    fn merged_readers_summarise_concatenated_stream() {
        let k = 64;
        let mut parts = Vec::new();
        for shard in 0..4u64 {
            let mut q = QuantilesSketch::with_seed(k, shard).unwrap();
            for i in (shard..200_000).step_by(4) {
                q.update(i);
            }
            parts.push(q.reader());
        }
        let merged = QuantilesReader::merged(parts.iter());
        assert_eq!(merged.n(), 200_000);
        assert_eq!(merged.quantile(0.0), Some(0));
        assert_eq!(merged.quantile(1.0), Some(199_999));
        let eps = epsilon_for_k(k);
        for phi in [0.25, 0.5, 0.75] {
            let v = merged.quantile(phi).unwrap() as f64 / 200_000.0;
            assert!((v - phi).abs() <= 4.0 * eps, "phi={phi} got rank {v}");
        }
    }

    #[test]
    fn merged_reader_of_one_part_is_identity() {
        let q = filled(32, 3, 10_000);
        let r = q.reader();
        let m = QuantilesReader::merged([&r]);
        assert_eq!(m.n(), r.n());
        for phi in [0.0, 0.3, 0.9, 1.0] {
            assert_eq!(m.quantile(phi), r.quantile(phi));
        }
    }

    #[test]
    fn rejects_tiny_k() {
        assert!(QuantilesSketch::<u64>::with_seed(1, 0).is_err());
        assert!(QuantilesSketch::<u64>::with_seed(2, 0).is_ok());
    }

    #[test]
    fn empty_sketch_queries() {
        let q = QuantilesSketch::<u64>::with_seed(16, 0).unwrap();
        assert!(q.is_empty());
        assert_eq!(q.quantile(0.5), None);
        assert_eq!(q.rank(&5), 0.0);
    }

    #[test]
    fn small_stream_is_exact() {
        // Fewer than 2k items: everything lives in the base buffer.
        let q = filled(64, 1, 100);
        for phi in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let v = q.quantile(phi).unwrap();
            let expected = (phi * 100.0).ceil() as u64 - 1;
            assert_eq!(v, expected, "phi={phi}");
        }
    }

    #[test]
    fn extremes_are_exact() {
        let q = filled(32, 1, 500_000);
        assert_eq!(q.quantile(0.0), Some(0));
        assert_eq!(q.quantile(1.0), Some(499_999));
        assert_eq!(q.min_item(), Some(&0));
        assert_eq!(q.max_item(), Some(&499_999));
    }

    #[test]
    fn weight_invariant_holds_throughout() {
        let mut q = QuantilesSketch::<u64>::with_seed(8, 3).unwrap();
        for i in 0..10_000 {
            q.update(i);
            if i % 97 == 0 {
                assert!(q.check_weight_invariant(), "broken at n={}", i + 1);
            }
        }
        assert!(q.check_weight_invariant());
    }

    #[test]
    fn rank_error_within_epsilon_sorted_stream() {
        let k = 128;
        let n = 200_000u64;
        let q = filled(k, 7, n);
        let eps = epsilon_for_k(k);
        for phi in [0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let v = q.quantile(phi).unwrap();
            let true_rank = v as f64 / n as f64; // stream is 0..n
            assert!(
                (true_rank - phi).abs() <= 3.0 * eps,
                "phi={phi} got rank {true_rank} (eps={eps})"
            );
        }
    }

    #[test]
    fn rank_error_within_epsilon_shuffled_stream() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let k = 128;
        let n = 100_000u64;
        let mut items: Vec<u64> = (0..n).collect();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        items.shuffle(&mut rng);
        let mut q = QuantilesSketch::with_seed(k, 5).unwrap();
        for &i in &items {
            q.update(i);
        }
        let eps = epsilon_for_k(k);
        for phi in [0.05, 0.25, 0.5, 0.75, 0.95] {
            let v = q.quantile(phi).unwrap();
            let true_rank = v as f64 / n as f64;
            assert!(
                (true_rank - phi).abs() <= 3.0 * eps,
                "phi={phi} got rank {true_rank}"
            );
        }
    }

    #[test]
    fn rank_is_monotone() {
        let q = filled(64, 11, 50_000);
        let r1 = q.rank(&10_000);
        let r2 = q.rank(&20_000);
        let r3 = q.rank(&40_000);
        assert!(r1 <= r2 && r2 <= r3);
        assert!((r2 - 0.4).abs() < 0.05);
    }

    #[test]
    fn quantile_of_rank_round_trip() {
        let q = filled(128, 13, 100_000);
        for phi in [0.2, 0.5, 0.8] {
            let v = q.quantile(phi).unwrap();
            let r = q.rank(&v);
            assert!((r - phi).abs() < 0.05, "phi={phi} rank={r}");
        }
    }

    #[test]
    fn merge_equals_concatenation_in_distribution() {
        let k = 128;
        let mut a = QuantilesSketch::<u64>::with_seed(k, 1).unwrap();
        let mut b = QuantilesSketch::<u64>::with_seed(k, 2).unwrap();
        // a gets the low half, b the high half.
        for i in 0..50_000 {
            a.update(i);
        }
        for i in 50_000..100_000 {
            b.update(i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.n(), 100_000);
        assert!(a.check_weight_invariant());
        let eps = epsilon_for_k(k);
        for phi in [0.1, 0.5, 0.9] {
            let v = a.quantile(phi).unwrap();
            let true_rank = v as f64 / 100_000.0;
            assert!(
                (true_rank - phi).abs() <= 3.0 * eps,
                "phi={phi} rank={true_rank}"
            );
        }
    }

    #[test]
    fn merge_with_partial_base_buffer() {
        let k = 16;
        let mut a = filled(k, 1, 1000);
        let b = filled(k, 2, 37); // only a partial base buffer
        a.merge(&b).unwrap();
        assert_eq!(a.n(), 1037);
        assert!(a.check_weight_invariant());
    }

    #[test]
    fn merge_k_mismatch_rejected() {
        let mut a = filled(16, 1, 10);
        let b = filled(32, 1, 10);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn merge_updates_extrema() {
        let mut a = filled(16, 1, 100); // 0..100
        let mut b = QuantilesSketch::<u64>::with_seed(16, 2).unwrap();
        b.update(1_000_000);
        a.merge(&b).unwrap();
        assert_eq!(a.max_item(), Some(&1_000_000));
        assert_eq!(a.min_item(), Some(&0));
    }

    #[test]
    fn clear_resets() {
        let mut q = filled(16, 1, 10_000);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.quantile(0.5), None);
        q.update(7);
        assert_eq!(q.quantile(0.5), Some(7));
    }

    #[test]
    fn duplicate_heavy_stream() {
        // 90% of the stream is the value 42; its rank interval must
        // contain the median.
        let mut q = QuantilesSketch::<u64>::with_seed(64, 17).unwrap();
        for i in 0..10_000u64 {
            q.update(if i % 10 == 0 { i } else { 42 });
        }
        assert_eq!(q.quantile(0.5), Some(42));
    }

    #[test]
    fn reader_batch_queries() {
        let q = filled(64, 1, 10_000);
        let r = q.reader();
        let qs = r.quantiles(&[0.25, 0.5, 0.75]);
        assert_eq!(qs.len(), 3);
        assert!(qs.iter().all(|x| x.is_some()));
        let cdf = r.cdf(&[2_500, 5_000, 7_500]);
        assert_eq!(cdf.len(), 4);
        assert!((cdf[1] - 0.5).abs() < 0.1);
        assert_eq!(*cdf.last().unwrap(), 1.0);
        let pmf = r.pmf(&[2_500, 5_000, 7_500]);
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_oracle_seed() {
        let a = filled(32, 123, 50_000);
        let b = filled(32, 123, 50_000);
        for phi in [0.1, 0.5, 0.9] {
            assert_eq!(a.quantile(phi), b.quantile(phi));
        }
    }

    #[test]
    fn different_oracle_seeds_may_differ_but_stay_accurate() {
        let a = filled(32, 1, 50_000);
        let b = filled(32, 2, 50_000);
        let (va, vb) = (a.quantile(0.5).unwrap(), b.quantile(0.5).unwrap());
        for v in [va, vb] {
            assert!((v as f64 / 50_000.0 - 0.5).abs() < 0.1);
        }
    }

    #[test]
    fn works_with_total_f64() {
        use crate::quantiles::TotalF64;
        let mut q = QuantilesSketch::<TotalF64>::with_seed(64, 1).unwrap();
        for i in 0..10_000 {
            q.update(TotalF64(i as f64 / 100.0));
        }
        let med = q.quantile(0.5).unwrap().0;
        assert!((med - 50.0).abs() < 5.0);
    }
}
