//! Wire form of the *updatable* Quantiles sketch.
//!
//! The unified [`crate::wire`] module owns the envelope (16-byte header)
//! and the merge-tier *ladder* image; this module serialises the full
//! updatable sketch state — level array keyed by `k`, base buffer,
//! min/max — so a deserialised sketch can keep ingesting. Both forms
//! share the Quantiles family code and are told apart by
//! [`FLAG_QUANTILES_UPDATABLE`] (set here, clear for ladders).
//!
//! Payload layout (little-endian, after the envelope header):
//! `k(u32) | base_len(u32) | n(u64) | level_bitmap(u64) |
//!  min | max | base items… | full-level buffers (ascending level)…`
//! with `min`/`max` present iff the stream is non-empty
//! ([`FLAG_QUANTILES_NONEMPTY`]).

use super::sketch::QuantilesSketch;
use crate::error::{Result, WireError};
use crate::oracle::Oracle;
pub use crate::wire::WireItem;
use crate::wire::{SketchFamily, WireHeader, FLAG_QUANTILES_NONEMPTY, FLAG_QUANTILES_UPDATABLE};
use bytes::{Buf, Bytes, BytesMut};

const UPDATABLE_FIXED: u64 = 24;

/// See [`crate::wire`]: the updatable form shares the Quantiles family
/// envelope, distinguished by [`FLAG_QUANTILES_UPDATABLE`].
impl<T: Ord + Clone + WireItem> crate::wire::WireSketch for QuantilesSketch<T> {
    const FAMILY: SketchFamily = SketchFamily::Quantiles;
}

impl<T: Ord + Clone + WireItem> crate::wire::WireEncode for QuantilesSketch<T> {
    fn wire_flags(&self) -> u8 {
        let nonempty = if self.n() > 0 {
            FLAG_QUANTILES_NONEMPTY
        } else {
            0
        };
        FLAG_QUANTILES_UPDATABLE | nonempty
    }

    fn wire_item_width(&self) -> u8 {
        T::WIDTH as u8
    }

    fn encode_payload(&self, buf: &mut BytesMut) {
        use bytes::BufMut;
        let (k, n, base, levels, min, max) = self.wire_parts();
        buf.put_u32_le(k as u32);
        buf.put_u32_le(base.len() as u32);
        buf.put_u64_le(n);
        let mut bitmap = 0u64;
        for (i, level) in levels.iter().enumerate() {
            if !level.is_empty() {
                bitmap |= 1 << i;
            }
        }
        buf.put_u64_le(bitmap);
        if n > 0 {
            min.expect("non-empty sketch has min").write_to(buf);
            max.expect("non-empty sketch has max").write_to(buf);
        }
        for item in base {
            item.write_to(buf);
        }
        for level in levels.iter().filter(|l| !l.is_empty()) {
            for item in level.iter() {
                item.write_to(buf);
            }
        }
    }

    fn payload_size_hint(&self) -> Option<usize> {
        let (_, n, base, levels, _, _) = self.wire_parts();
        let min_max = if n > 0 { 2 * T::WIDTH } else { 0 };
        let level_items: usize = levels.iter().map(|l| l.len()).sum();
        Some(UPDATABLE_FIXED as usize + min_max + (base.len() + level_items) * T::WIDTH)
    }
}

impl<T: Ord + Clone + WireItem> QuantilesSketch<T> {
    /// Serialises the full updatable state into the unified wire format
    /// (Quantiles family, [`FLAG_QUANTILES_UPDATABLE`] set).
    pub fn to_bytes(&self) -> Bytes {
        crate::wire::WireEncode::to_wire_bytes(self)
    }

    /// Deserialises a sketch produced by [`Self::to_bytes`], attaching a
    /// fresh oracle for future compactions.
    ///
    /// # Errors
    ///
    /// Returns the [`WireError`] folded into
    /// [`crate::error::SketchError`] on structural damage (bad
    /// magic/version, truncation, level buffers of the wrong size, or a
    /// weight mismatch against `n`).
    pub fn from_bytes(data: &[u8], oracle: impl Oracle + 'static) -> Result<Self> {
        Ok(Self::decode_updatable(data, oracle)?)
    }

    fn decode_updatable(
        data: &[u8],
        oracle: impl Oracle + 'static,
    ) -> std::result::Result<Self, WireError> {
        let (header, mut payload) = WireHeader::parse(data)?;
        if header.family != SketchFamily::Quantiles {
            return Err(WireError::FamilyMismatch {
                expected: SketchFamily::Quantiles.name(),
                found: header.family.name(),
            });
        }
        if header.flags & FLAG_QUANTILES_UPDATABLE == 0 {
            return Err(WireError::invariant(
                "quantiles flags",
                "image is a ladder, not an updatable sketch \
                 (use QuantilesLadder::from_wire_bytes)",
            ));
        }
        if header.item_width as usize != T::WIDTH {
            return Err(WireError::ItemWidth {
                expected: T::WIDTH as u8,
                found: header.item_width,
            });
        }
        if (payload.len() as u64) < UPDATABLE_FIXED {
            return Err(WireError::Truncated {
                context: "quantiles payload",
                needed: UPDATABLE_FIXED as usize,
                have: payload.len(),
            });
        }
        let k = payload.get_u32_le() as usize;
        let base_len = payload.get_u32_le() as usize;
        let n = payload.get_u64_le();
        let bitmap = payload.get_u64_le();
        if k < 2 {
            return Err(WireError::invariant("quantiles k", "k < 2"));
        }
        if base_len >= 2 * k {
            return Err(WireError::invariant(
                "quantiles base",
                format!("base buffer of {base_len} items at k = {k}"),
            ));
        }
        let non_empty = header.flags & FLAG_QUANTILES_NONEMPTY != 0;
        if non_empty != (n > 0) {
            return Err(WireError::invariant(
                "quantiles flags",
                "non-empty flag inconsistent with n",
            ));
        }

        let levels_count = 64 - bitmap.leading_zeros() as usize;
        let full_levels = bitmap.count_ones() as u64;
        // k ≤ 2^32 and ≤ 64 full levels: no overflow in u64.
        let need_items = base_len as u64 + full_levels * k as u64 + if non_empty { 2 } else { 0 };
        if UPDATABLE_FIXED + need_items * T::WIDTH as u64 != header.payload_len {
            return Err(WireError::invariant(
                "quantiles size",
                format!(
                    "structure needs {} payload bytes, header carries {}",
                    UPDATABLE_FIXED + need_items * T::WIDTH as u64,
                    header.payload_len
                ),
            ));
        }

        let (min, max) = if non_empty {
            let min = T::read_from(&mut payload);
            let max = T::read_from(&mut payload);
            if min > max {
                return Err(WireError::invariant("quantiles min/max", "min above max"));
            }
            (Some(min), Some(max))
        } else {
            (None, None)
        };
        let in_range = |item: &T| match (&min, &max) {
            (Some(lo), Some(hi)) => item >= lo && item <= hi,
            _ => false,
        };
        let base: Vec<T> = (0..base_len).map(|_| T::read_from(&mut payload)).collect();
        if !base.iter().all(in_range) {
            return Err(WireError::invariant(
                "quantiles base",
                "base item outside [min, max]",
            ));
        }
        let mut levels: Vec<Vec<T>> = Vec::with_capacity(levels_count);
        for i in 0..levels_count {
            if bitmap & (1 << i) != 0 {
                let buf: Vec<T> = (0..k).map(|_| T::read_from(&mut payload)).collect();
                if buf.windows(2).any(|w| w[0] > w[1]) {
                    return Err(WireError::invariant(
                        "quantiles level",
                        format!("level {i} not sorted"),
                    ));
                }
                if ![buf.first(), buf.last()]
                    .into_iter()
                    .flatten()
                    .all(in_range)
                {
                    return Err(WireError::invariant(
                        "quantiles level",
                        format!("level {i} item outside [min, max]"),
                    ));
                }
                levels.push(buf);
            } else {
                levels.push(Vec::new());
            }
        }

        // Weight invariant: n must equal the summed buffer weight.
        let mut total = base_len as u64;
        for (i, level) in levels.iter().enumerate() {
            total += (level.len() as u64) << (i + 1);
        }
        if total != n {
            return Err(WireError::invariant(
                "quantiles weight",
                format!("buffers carry {total}, header says {n}"),
            ));
        }

        QuantilesSketch::from_wire_parts(k, n, base, levels, min, max, oracle)
            .map_err(|e| WireError::invariant("quantiles parts", e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::DeterministicOracle;
    use crate::quantiles::TotalF64;

    fn filled(k: usize, n: u64) -> QuantilesSketch<u64> {
        let mut q = QuantilesSketch::with_seed(k, 9).unwrap();
        for i in 0..n {
            q.update(i);
        }
        q
    }

    #[test]
    fn round_trip_preserves_queries() {
        for n in [0u64, 1, 100, 255, 256, 10_000] {
            let q = filled(128, n);
            let bytes = q.to_bytes();
            let back =
                QuantilesSketch::<u64>::from_bytes(&bytes, DeterministicOracle::new(1)).unwrap();
            assert_eq!(back.n(), n);
            assert!(back.check_weight_invariant());
            for phi in [0.0, 0.25, 0.5, 0.75, 1.0] {
                assert_eq!(back.quantile(phi), q.quantile(phi), "n={n} phi={phi}");
            }
        }
    }

    #[test]
    fn round_trip_is_byte_identical() {
        for n in [0u64, 1, 4_096, 10_000] {
            let q = filled(64, n);
            let bytes = q.to_bytes();
            let back =
                QuantilesSketch::<u64>::from_bytes(&bytes, DeterministicOracle::new(1)).unwrap();
            assert_eq!(back.to_bytes(), bytes, "n={n}");
        }
    }

    #[test]
    fn round_trip_total_f64() {
        let mut q = QuantilesSketch::<TotalF64>::with_seed(64, 3).unwrap();
        for i in 0..5_000 {
            q.update(TotalF64(i as f64 * 0.5));
        }
        let back =
            QuantilesSketch::<TotalF64>::from_bytes(&q.to_bytes(), DeterministicOracle::new(2))
                .unwrap();
        assert_eq!(back.quantile(0.5), q.quantile(0.5));
        assert_eq!(back.min_item(), q.min_item());
        assert_eq!(back.max_item(), q.max_item());
    }

    #[test]
    fn deserialised_sketch_keeps_ingesting() {
        let q = filled(32, 1_000);
        let mut back =
            QuantilesSketch::<u64>::from_bytes(&q.to_bytes(), DeterministicOracle::new(5)).unwrap();
        for i in 1_000..20_000 {
            back.update(i);
        }
        assert!(back.check_weight_invariant());
        let med = back.quantile(0.5).unwrap();
        assert!((med as f64 - 10_000.0).abs() < 2_000.0, "median {med}");
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut b = filled(16, 100).to_bytes().to_vec();
        b[0] ^= 0xFF;
        assert!(QuantilesSketch::<u64>::from_bytes(&b, DeterministicOracle::new(0)).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let b = filled(16, 1_000).to_bytes();
        assert!(
            QuantilesSketch::<u64>::from_bytes(&b[..b.len() - 3], DeterministicOracle::new(0))
                .is_err()
        );
        assert!(QuantilesSketch::<u64>::from_bytes(&b[..10], DeterministicOracle::new(0)).is_err());
    }

    #[test]
    fn weight_mismatch_rejected() {
        let mut b = filled(16, 1_000).to_bytes().to_vec();
        // Corrupt n: envelope (16) + k/base_len (8) puts n at offset 24.
        b[24] ^= 0x01;
        assert!(QuantilesSketch::<u64>::from_bytes(&b, DeterministicOracle::new(0)).is_err());
    }

    #[test]
    fn unsorted_level_rejected() {
        let q = filled(16, 1_000); // guarantees at least one full level
        let mut b = q.to_bytes().to_vec();
        // Levels are the tail of the payload; swap the last two items,
        // which belong to the highest level and are sorted.
        let len = b.len();
        for i in 0..8 {
            b.swap(len - 16 + i, len - 8 + i);
        }
        assert!(QuantilesSketch::<u64>::from_bytes(&b, DeterministicOracle::new(0)).is_err());
    }
}
