//! Compact wire format for Quantiles sketches over fixed-width items.
//!
//! Layout (little-endian):
//! `magic(u16) | version(u8) | flags(u8) | k(u32) | n(u64) |
//!  level_bitmap(u64) | base_len(u32) | pad(u32) |
//!  min | max | base items… | full-level buffers (ascending level)…`
//!
//! `flags` bit 0 is set when the sketch is non-empty (min/max present).

use super::sketch::QuantilesSketch;
use super::TotalF64;
use crate::error::{Result, SketchError};
use crate::oracle::Oracle;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: u16 = 0xFC0A;
const VERSION: u8 = 1;

/// Items serialisable into a fixed-width little-endian encoding.
pub trait WireItem: Sized {
    /// Encoded width in bytes.
    const WIDTH: usize;
    /// Appends the encoding of `self`.
    fn write_to(&self, buf: &mut BytesMut);
    /// Decodes one item (the caller guarantees `WIDTH` bytes remain).
    fn read_from(buf: &mut &[u8]) -> Self;
}

impl WireItem for u64 {
    const WIDTH: usize = 8;
    fn write_to(&self, buf: &mut BytesMut) {
        buf.put_u64_le(*self);
    }
    fn read_from(buf: &mut &[u8]) -> Self {
        buf.get_u64_le()
    }
}

impl WireItem for i64 {
    const WIDTH: usize = 8;
    fn write_to(&self, buf: &mut BytesMut) {
        buf.put_i64_le(*self);
    }
    fn read_from(buf: &mut &[u8]) -> Self {
        buf.get_i64_le()
    }
}

impl WireItem for TotalF64 {
    const WIDTH: usize = 8;
    fn write_to(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.0.to_bits());
    }
    fn read_from(buf: &mut &[u8]) -> Self {
        TotalF64(f64::from_bits(buf.get_u64_le()))
    }
}

impl<T: Ord + Clone + WireItem> QuantilesSketch<T> {
    /// Serialises the sketch into its compact wire format.
    pub fn to_bytes(&self) -> Bytes {
        let (k, n, base, levels, min, max) = self.wire_parts();
        let retained: usize = base.len() + levels.iter().map(|l| l.len()).sum::<usize>();
        let mut buf = BytesMut::with_capacity(48 + T::WIDTH * (retained + 2));
        buf.put_u16_le(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(u8::from(n > 0));
        buf.put_u32_le(k as u32);
        buf.put_u64_le(n);
        let mut bitmap = 0u64;
        for (i, level) in levels.iter().enumerate() {
            if !level.is_empty() {
                bitmap |= 1 << i;
            }
        }
        buf.put_u64_le(bitmap);
        buf.put_u32_le(base.len() as u32);
        buf.put_u32_le(0);
        if n > 0 {
            min.expect("non-empty sketch has min").write_to(&mut buf);
            max.expect("non-empty sketch has max").write_to(&mut buf);
        }
        for item in base {
            item.write_to(&mut buf);
        }
        for level in levels.iter().filter(|l| !l.is_empty()) {
            for item in level.iter() {
                item.write_to(&mut buf);
            }
        }
        buf.freeze()
    }

    /// Deserialises a sketch produced by [`Self::to_bytes`], attaching a
    /// fresh oracle for future compactions.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::Corrupt`] on structural damage (bad magic,
    /// truncation, level buffers of the wrong size, or a weight
    /// mismatch against `n`).
    pub fn from_bytes(mut data: &[u8], oracle: impl Oracle + 'static) -> Result<Self> {
        if data.len() < 32 {
            return Err(SketchError::corrupt("preamble truncated"));
        }
        let magic = data.get_u16_le();
        if magic != MAGIC {
            return Err(SketchError::corrupt(format!("bad magic {magic:#x}")));
        }
        let version = data.get_u8();
        if version != VERSION {
            return Err(SketchError::corrupt(format!("unknown version {version}")));
        }
        let flags = data.get_u8();
        let k = data.get_u32_le() as usize;
        if k < 2 {
            return Err(SketchError::corrupt("k < 2"));
        }
        let n = data.get_u64_le();
        let bitmap = data.get_u64_le();
        let base_len = data.get_u32_le() as usize;
        let _pad = data.get_u32_le();
        if base_len >= 2 * k {
            return Err(SketchError::corrupt("base buffer too large"));
        }
        let non_empty = flags & 1 == 1;
        if non_empty != (n > 0) {
            return Err(SketchError::corrupt("flags inconsistent with n"));
        }

        let mut need = base_len;
        let levels_count = 64 - bitmap.leading_zeros() as usize;
        for i in 0..levels_count {
            if bitmap & (1 << i) != 0 {
                need += k;
            }
        }
        let need_items = need + if non_empty { 2 } else { 0 };
        if data.remaining() < need_items * T::WIDTH {
            return Err(SketchError::corrupt("item payload truncated"));
        }

        let (min, max) = if non_empty {
            (Some(T::read_from(&mut data)), Some(T::read_from(&mut data)))
        } else {
            (None, None)
        };
        let base: Vec<T> = (0..base_len).map(|_| T::read_from(&mut data)).collect();
        let mut levels: Vec<Vec<T>> = Vec::with_capacity(levels_count);
        for i in 0..levels_count {
            if bitmap & (1 << i) != 0 {
                let buf: Vec<T> = (0..k).map(|_| T::read_from(&mut data)).collect();
                if buf.windows(2).any(|w| w[0] > w[1]) {
                    return Err(SketchError::corrupt(format!("level {i} not sorted")));
                }
                levels.push(buf);
            } else {
                levels.push(Vec::new());
            }
        }

        // Weight invariant: n must equal the summed buffer weight.
        let mut total = base_len as u64;
        for (i, level) in levels.iter().enumerate() {
            total += (level.len() as u64) << (i + 1);
        }
        if total != n {
            return Err(SketchError::corrupt(format!(
                "weight mismatch: buffers carry {total}, header says {n}"
            )));
        }

        QuantilesSketch::from_wire_parts(k, n, base, levels, min, max, oracle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::DeterministicOracle;

    fn filled(k: usize, n: u64) -> QuantilesSketch<u64> {
        let mut q = QuantilesSketch::with_seed(k, 9).unwrap();
        for i in 0..n {
            q.update(i);
        }
        q
    }

    #[test]
    fn round_trip_preserves_queries() {
        for n in [0u64, 1, 100, 255, 256, 10_000] {
            let q = filled(128, n);
            let bytes = q.to_bytes();
            let back =
                QuantilesSketch::<u64>::from_bytes(&bytes, DeterministicOracle::new(1)).unwrap();
            assert_eq!(back.n(), n);
            assert!(back.check_weight_invariant());
            for phi in [0.0, 0.25, 0.5, 0.75, 1.0] {
                assert_eq!(back.quantile(phi), q.quantile(phi), "n={n} phi={phi}");
            }
        }
    }

    #[test]
    fn round_trip_total_f64() {
        let mut q = QuantilesSketch::<TotalF64>::with_seed(64, 3).unwrap();
        for i in 0..5_000 {
            q.update(TotalF64(i as f64 * 0.5));
        }
        let back =
            QuantilesSketch::<TotalF64>::from_bytes(&q.to_bytes(), DeterministicOracle::new(2))
                .unwrap();
        assert_eq!(back.quantile(0.5), q.quantile(0.5));
        assert_eq!(back.min_item(), q.min_item());
        assert_eq!(back.max_item(), q.max_item());
    }

    #[test]
    fn deserialised_sketch_keeps_ingesting() {
        let q = filled(32, 1_000);
        let mut back =
            QuantilesSketch::<u64>::from_bytes(&q.to_bytes(), DeterministicOracle::new(5)).unwrap();
        for i in 1_000..20_000 {
            back.update(i);
        }
        assert!(back.check_weight_invariant());
        let med = back.quantile(0.5).unwrap();
        assert!((med as f64 - 10_000.0).abs() < 2_000.0, "median {med}");
    }

    #[test]
    fn corrupt_magic_rejected() {
        let mut b = filled(16, 100).to_bytes().to_vec();
        b[0] ^= 0xFF;
        assert!(QuantilesSketch::<u64>::from_bytes(&b, DeterministicOracle::new(0)).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let b = filled(16, 1_000).to_bytes();
        assert!(
            QuantilesSketch::<u64>::from_bytes(&b[..b.len() - 3], DeterministicOracle::new(0))
                .is_err()
        );
        assert!(QuantilesSketch::<u64>::from_bytes(&b[..10], DeterministicOracle::new(0)).is_err());
    }

    #[test]
    fn weight_mismatch_rejected() {
        let mut b = filled(16, 1_000).to_bytes().to_vec();
        // Corrupt n (offset 8..16).
        b[8] ^= 0x01;
        assert!(QuantilesSketch::<u64>::from_bytes(&b, DeterministicOracle::new(0)).is_err());
    }

    #[test]
    fn unsorted_level_rejected() {
        let q = filled(16, 1_000); // guarantees at least one full level
        let mut b = q.to_bytes().to_vec();
        // Base items start at 48 + 16 (min/max); levels follow the base
        // buffer. Swap two adjacent items in the *last* 2 entries of the
        // payload, which belong to the highest level and are sorted.
        let len = b.len();
        for i in 0..8 {
            b.swap(len - 16 + i, len - 8 + i);
        }
        assert!(QuantilesSketch::<u64>::from_bytes(&b, DeterministicOracle::new(0)).is_err());
    }
}
