//! Reservoir sampling (Vitter's Algorithm R).
//!
//! §5.1 names reservoir sampling as the second example of a sketch whose
//! pre-filtering hint pays off: once the reservoir is full, an update is
//! accepted only with probability `k/n`, so threads sharing an (upper
//! bound on) `n` can discard most updates locally before touching shared
//! state. The concurrent framework exercises exactly that through
//! `shouldAdd`.

use crate::error::{Result, SketchError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Uniform random sample of up to `k` items from a stream of unknown
/// length (Vitter's Algorithm R).
///
/// # Examples
///
/// ```
/// use fcds_sketches::sampling::ReservoirSampler;
///
/// let mut r = ReservoirSampler::<u64>::new(100, 42).unwrap();
/// for i in 0..100_000u64 {
///     r.update(i);
/// }
/// assert_eq!(r.sample().len(), 100);
/// assert_eq!(r.n(), 100_000);
/// ```
pub struct ReservoirSampler<T> {
    k: usize,
    n: u64,
    reservoir: Vec<T>,
    rng: SmallRng,
}

impl<T: fmt::Debug> fmt::Debug for ReservoirSampler<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReservoirSampler")
            .field("k", &self.k)
            .field("n", &self.n)
            .field("len", &self.reservoir.len())
            .finish()
    }
}

impl<T> ReservoirSampler<T> {
    /// Creates an empty reservoir of capacity `k`, seeded deterministically.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::InvalidParameter`] if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Result<Self> {
        if k == 0 {
            return Err(SketchError::invalid("k", "must be ≥ 1"));
        }
        Ok(ReservoirSampler {
            k,
            n: 0,
            reservoir: Vec::with_capacity(k),
            rng: SmallRng::seed_from_u64(seed),
        })
    }

    /// Reservoir capacity.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of stream items processed so far.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The current sample (uniform over the first `n` items).
    pub fn sample(&self) -> &[T] {
        &self.reservoir
    }

    /// Processes one stream item.
    pub fn update(&mut self, item: T) {
        self.n += 1;
        if self.reservoir.len() < self.k {
            self.reservoir.push(item);
        } else {
            let j = self.rng.random_range(0..self.n);
            if (j as usize) < self.k {
                self.reservoir[j as usize] = item;
            }
        }
    }

    /// The probability that the *next* update enters the reservoir —
    /// this is the quantity a `shouldAdd` pre-filter can exploit.
    pub fn acceptance_probability(&self) -> f64 {
        if self.n < self.k as u64 {
            1.0
        } else {
            self.k as f64 / (self.n + 1) as f64
        }
    }
}

impl<T: Clone> ReservoirSampler<T> {
    /// Merges another reservoir into this one, producing a uniform sample
    /// of the combined stream: each slot of the result draws from `self`'s
    /// or `other`'s sample in proportion to their stream lengths.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::Incompatible`] if capacities differ.
    pub fn merge(&mut self, other: &ReservoirSampler<T>) -> Result<()> {
        if other.k != self.k {
            return Err(SketchError::incompatible(format!(
                "capacity mismatch: {} vs {}",
                self.k, other.k
            )));
        }
        if other.n == 0 {
            return Ok(());
        }
        if self.n == 0 {
            self.n = other.n;
            self.reservoir = other.reservoir.clone();
            return Ok(());
        }
        let total = self.n + other.n;
        let mut merged: Vec<T> = Vec::with_capacity(self.k);
        let take = self.k.min(total as usize);
        for _ in 0..take {
            let from_self = self.rng.random_range(0..total) < self.n;
            let src = if from_self {
                &self.reservoir
            } else {
                &other.reservoir
            };
            let idx = self.rng.random_range(0..src.len());
            merged.push(src[idx].clone());
        }
        self.reservoir = merged;
        self.n = total;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_capacity() {
        assert!(ReservoirSampler::<u64>::new(0, 0).is_err());
    }

    #[test]
    fn keeps_everything_below_capacity() {
        let mut r = ReservoirSampler::new(100, 1).unwrap();
        for i in 0..50u64 {
            r.update(i);
        }
        assert_eq!(r.sample(), (0..50).collect::<Vec<_>>().as_slice());
        assert_eq!(r.acceptance_probability(), 1.0);
    }

    #[test]
    fn caps_at_capacity() {
        let mut r = ReservoirSampler::new(10, 1).unwrap();
        for i in 0..10_000u64 {
            r.update(i);
        }
        assert_eq!(r.sample().len(), 10);
        assert_eq!(r.n(), 10_000);
    }

    #[test]
    fn acceptance_probability_decays() {
        let mut r = ReservoirSampler::new(10, 1).unwrap();
        for i in 0..1_000u64 {
            r.update(i);
        }
        let p = r.acceptance_probability();
        assert!((p - 10.0 / 1_001.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        // Run many independent reservoirs; each item of 0..100 should be
        // sampled into a k=10 reservoir with probability ~0.1.
        let trials = 2_000;
        let mut hits = vec![0u32; 100];
        for t in 0..trials {
            let mut r = ReservoirSampler::new(10, t as u64).unwrap();
            for i in 0..100u64 {
                r.update(i);
            }
            for &v in r.sample() {
                hits[v as usize] += 1;
            }
        }
        let expected = trials as f64 * 0.1;
        for (i, &h) in hits.iter().enumerate() {
            let rel = (h as f64 - expected).abs() / expected;
            assert!(
                rel < 0.35,
                "item {i} sampled {h} times (expected ~{expected})"
            );
        }
    }

    #[test]
    fn merge_capacity_mismatch_rejected() {
        let mut a = ReservoirSampler::<u64>::new(10, 1).unwrap();
        let b = ReservoirSampler::<u64>::new(20, 1).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn merge_tracks_total_n() {
        let mut a = ReservoirSampler::new(10, 1).unwrap();
        let mut b = ReservoirSampler::new(10, 2).unwrap();
        for i in 0..500u64 {
            a.update(i);
        }
        for i in 500..2_000u64 {
            b.update(i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.n(), 2_000);
        assert_eq!(a.sample().len(), 10);
    }

    #[test]
    fn merge_into_empty_copies() {
        let mut a = ReservoirSampler::<u64>::new(5, 1).unwrap();
        let mut b = ReservoirSampler::<u64>::new(5, 2).unwrap();
        for i in 0..100u64 {
            b.update(i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.n(), 100);
        assert_eq!(a.sample().len(), 5);
    }

    #[test]
    fn merge_respects_stream_proportions() {
        // Merge a 9:1 pair many times; items from the large stream should
        // dominate the merged sample roughly 9:1.
        let mut large_hits = 0u32;
        let mut total = 0u32;
        for t in 0..500 {
            let mut a = ReservoirSampler::new(20, t).unwrap();
            let mut b = ReservoirSampler::new(20, t + 10_000).unwrap();
            for i in 0..9_000u64 {
                a.update(i); // marker: < 9_000
            }
            for i in 9_000..10_000u64 {
                b.update(i);
            }
            a.merge(&b).unwrap();
            for &v in a.sample() {
                total += 1;
                if v < 9_000 {
                    large_hits += 1;
                }
            }
        }
        let frac = large_hits as f64 / total as f64;
        assert!((frac - 0.9).abs() < 0.05, "large-stream fraction {frac}");
    }
}
