//! Crash recovery: scanning the snapshot directory at boot, validating
//! every record, and re-registering recovered streams **before the
//! server accepts traffic**.
//!
//! The decoder trusts nothing: length bounds come before any slicing,
//! the CRC is recomputed over the whole record, and the embedded wire
//! image is re-validated with the capped `peek` + full zero-copy view
//! parse (the same discipline as a network merge) with its family byte
//! cross-checked against the record header. Every failure is a typed
//! [`RecoverError`] — never a panic — and the offending file is moved
//! aside ([`QUARANTINE_SUFFIX`](crate::persist::QUARANTINE_SUFFIX)) so
//! the server keeps booting with everything that *did* validate. A
//! quarantined record is kept for forensics but is never re-scanned
//! and never served.

use crate::persist::{
    snapshot_file_name, SnapshotStore, SNAP_HEADER_LEN, SNAP_MAGIC, SNAP_VERSION,
};
use crate::registry::CreateError;
use crate::{spawn_stream, ServerCtx, DEFAULT_STREAM};
use bytes::Bytes;
use fcds_sketches::wire::SketchFamily;
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Upper bound on a snapshot's embedded image length. Far above any
/// real image (a 1 MiB frame cap bounds what merges in), low enough
/// that a corrupted length field cannot drive allocation.
pub const SNAP_MAX_IMAGE_BYTES: u64 = 64 << 20;

/// Why a snapshot record was rejected. Every variant quarantines the
/// file; none of them stops the boot.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecoverError {
    /// The store could not read the file.
    Io(String),
    /// Shorter than the fixed header.
    Truncated {
        /// Actual byte length.
        len: usize,
    },
    /// The magic bytes are not `"FCSN"`.
    BadMagic,
    /// Unknown record version.
    BadVersion {
        /// The version byte found.
        got: u8,
    },
    /// Key length outside `1..=64`.
    KeyLength {
        /// The declared key length.
        got: u16,
    },
    /// Declared image length above [`SNAP_MAX_IMAGE_BYTES`].
    ImageTooLarge {
        /// The declared image length.
        declared: u64,
    },
    /// File length is not exactly `header + key + image` — a torn or
    /// doctored record.
    LengthMismatch {
        /// Length the header implies.
        expected: u64,
        /// Actual file length.
        actual: u64,
    },
    /// Recomputed CRC-32 does not match the stored one.
    CrcMismatch {
        /// CRC stored in the record.
        stored: u32,
        /// CRC recomputed over the record.
        computed: u32,
    },
    /// The family code is not a known sketch family.
    BadFamily {
        /// The family byte found.
        got: u8,
    },
    /// The embedded image failed wire validation (capped peek + view
    /// parse), or its envelope family contradicts the record header.
    Wire(String),
    /// The file's name does not match the key inside the record — a
    /// copied or renamed snapshot trying to impersonate another stream.
    NameMismatch {
        /// The file name the record's key implies.
        expected: String,
    },
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "snapshot read failed: {e}"),
            RecoverError::Truncated { len } => {
                write!(
                    f,
                    "record of {len} bytes is shorter than the {SNAP_HEADER_LEN}-byte header"
                )
            }
            RecoverError::BadMagic => write!(f, "bad snapshot magic (want \"FCSN\")"),
            RecoverError::BadVersion { got } => {
                write!(f, "unknown snapshot version {got} (want {SNAP_VERSION})")
            }
            RecoverError::KeyLength { got } => {
                write!(f, "key length {got} outside 1..=64")
            }
            RecoverError::ImageTooLarge { declared } => {
                write!(
                    f,
                    "declared image length {declared} exceeds cap {SNAP_MAX_IMAGE_BYTES}"
                )
            }
            RecoverError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "file is {actual} bytes but the header implies {expected}"
                )
            }
            RecoverError::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            RecoverError::BadFamily { got } => write!(f, "unknown sketch family code {got}"),
            RecoverError::Wire(e) => write!(f, "embedded image failed wire validation: {e}"),
            RecoverError::NameMismatch { expected } => {
                write!(
                    f,
                    "file name does not match record key (expected {expected})"
                )
            }
        }
    }
}

impl std::error::Error for RecoverError {}

/// A fully validated snapshot record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRecord {
    /// Sketch family of the stream.
    pub family: SketchFamily,
    /// The stream key.
    pub key: Vec<u8>,
    /// The stream's items counter at snapshot time.
    pub seq: u64,
    /// The validated fcds-wire envelope.
    pub image: Bytes,
}

/// Decodes and fully validates one snapshot record. Total: every
/// possible input maps to `Ok` or a typed [`RecoverError`], and no
/// allocation or slice is sized from an unvalidated length.
pub fn decode_record(bytes: &[u8]) -> Result<SnapshotRecord, RecoverError> {
    if bytes.len() < SNAP_HEADER_LEN {
        return Err(RecoverError::Truncated { len: bytes.len() });
    }
    if bytes[0..4] != SNAP_MAGIC {
        return Err(RecoverError::BadMagic);
    }
    if bytes[4] != SNAP_VERSION {
        return Err(RecoverError::BadVersion { got: bytes[4] });
    }
    let family_code = bytes[5];
    let key_len = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    let seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let image_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let stored_crc = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes"));
    if key_len == 0 || key_len as usize > crate::frame::MAX_STREAM_KEY {
        return Err(RecoverError::KeyLength { got: key_len });
    }
    if image_len > SNAP_MAX_IMAGE_BYTES {
        return Err(RecoverError::ImageTooLarge {
            declared: image_len,
        });
    }
    let expected = SNAP_HEADER_LEN as u64 + key_len as u64 + image_len;
    if bytes.len() as u64 != expected {
        return Err(RecoverError::LengthMismatch {
            expected,
            actual: bytes.len() as u64,
        });
    }
    let key = &bytes[SNAP_HEADER_LEN..SNAP_HEADER_LEN + key_len as usize];
    let image = &bytes[SNAP_HEADER_LEN + key_len as usize..];
    let computed = crate::persist::crc32(&[&bytes[..24], key, image]);
    if computed != stored_crc {
        return Err(RecoverError::CrcMismatch {
            stored: stored_crc,
            computed,
        });
    }
    let family =
        SketchFamily::from_code(family_code).ok_or(RecoverError::BadFamily { got: family_code })?;
    let envelope_family =
        crate::validate_envelope(image, SNAP_MAX_IMAGE_BYTES as u32).map_err(RecoverError::Wire)?;
    if envelope_family != family {
        return Err(RecoverError::Wire(format!(
            "record header says {} but envelope is {}",
            family.name(),
            envelope_family.name()
        )));
    }
    Ok(SnapshotRecord {
        family,
        key: key.to_vec(),
        seq,
        image: Bytes::from(image.to_vec()),
    })
}

/// What the boot-time scan did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RecoveryOutcome {
    /// Streams re-registered from valid snapshots.
    pub recovered: usize,
    /// Records that failed validation and were quarantined.
    pub quarantined: usize,
    /// Valid records that could not be installed (registry at capacity,
    /// engine build failure). Left in place for the next boot.
    pub skipped: usize,
    /// The typed reason each quarantined file was rejected.
    pub failures: Vec<(String, RecoverError)>,
}

/// Scans the store and re-registers every stream whose snapshot
/// validates, installing the recovered image into the stream's
/// `recovered` slot so queries, checkpoints and replica pushes all see
/// the pre-crash state immediately. Runs before the accept loop
/// starts, so a client can never observe a half-recovered server.
pub(crate) fn recover_streams(
    ctx: &Arc<ServerCtx>,
    store: &dyn SnapshotStore,
) -> Result<RecoveryOutcome, String> {
    let names = store
        .list()
        .map_err(|e| format!("snapshot directory scan: {e}"))?;
    let mut out = RecoveryOutcome::default();
    for name in names {
        let decoded = store
            .get(&name)
            .map_err(|e| RecoverError::Io(e.to_string()))
            .and_then(|bytes| decode_record(&bytes))
            .and_then(|rec| {
                let expected = snapshot_file_name(&rec.key);
                if expected != name {
                    Err(RecoverError::NameMismatch { expected })
                } else {
                    Ok(rec)
                }
            });
        match decoded {
            Ok(rec) => match install(ctx, rec) {
                Ok(()) => {
                    out.recovered += 1;
                    ctx.stats.streams_recovered.fetch_add(1, Ordering::Relaxed);
                }
                Err(InstallError::Quarantine(e)) => {
                    let _ = store.quarantine(&name);
                    out.quarantined += 1;
                    ctx.stats
                        .records_quarantined
                        .fetch_add(1, Ordering::Relaxed);
                    out.failures.push((name, e));
                }
                Err(InstallError::Skip) => out.skipped += 1,
            },
            Err(e) => {
                let _ = store.quarantine(&name);
                out.quarantined += 1;
                ctx.stats
                    .records_quarantined
                    .fetch_add(1, Ordering::Relaxed);
                out.failures.push((name, e));
            }
        }
    }
    Ok(out)
}

enum InstallError {
    /// The record contradicts live state (family mismatch with an
    /// existing stream) — quarantine it.
    Quarantine(RecoverError),
    /// Transient refusal (capacity, build failure) — leave the file
    /// for the next boot.
    Skip,
}

fn install(ctx: &Arc<ServerCtx>, rec: SnapshotRecord) -> Result<(), InstallError> {
    let workers = if rec.key == DEFAULT_STREAM {
        ctx.cfg.ingest_workers.max(1)
    } else {
        ctx.cfg.stream_workers.max(1)
    };
    match ctx.registry.get_or_create(&rec.key, rec.family, || {
        spawn_stream(ctx, &rec.key, rec.family, workers)
    }) {
        Ok((state, _created)) => {
            *state.recovered.lock().unwrap_or_else(|e| e.into_inner()) = Some(rec.image);
            state.items.store(rec.seq, Ordering::Release);
            state.persisted_seq.store(rec.seq, Ordering::Release);
            Ok(())
        }
        Err(CreateError::FamilyMismatch { expected }) => {
            Err(InstallError::Quarantine(RecoverError::Wire(format!(
                "stream already registered as {}, record says {}",
                expected.name(),
                rec.family.name()
            ))))
        }
        Err(CreateError::AtCapacity | CreateError::Build(_)) => Err(InstallError::Skip),
    }
}
