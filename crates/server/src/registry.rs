//! The per-key stream registry: the map from opaque stream keys to
//! running [`StreamEngine`]s, plus each stream's private ingest
//! workers, replica slots, and pushed-image store.
//!
//! Lifecycle contract (documented in the README and exercised by the
//! `registry_streams` suite):
//!
//! * **Create on first ingest or merge** — a v2 `Ingest` or `Merge`
//!   frame for an unknown key creates the stream with the frame's
//!   declared family. Queries never create ([`NackCode::UnknownStream`]
//!   instead), so a typo'd read cannot materialise an empty stream.
//! * **Family is fixed at creation** — later frames declaring a
//!   different family are rejected with
//!   [`NackCode::FamilyMismatch`] and leave the stream untouched.
//! * **Isolation** — every stream owns its worker threads, queues and
//!   circuit breakers; a poisoned batch or open breaker on one stream
//!   can never shed or NACK another stream's traffic.
//! * **Retire** — removes the key, drains and joins the stream's
//!   workers, quiesces the engine. A subsequent ingest/merge under the
//!   same key creates a *fresh* stream (any family).
//!
//! [`NackCode::UnknownStream`]: crate::frame::NackCode::UnknownStream
//! [`NackCode::FamilyMismatch`]: crate::frame::NackCode::FamilyMismatch

use crate::breaker::CircuitBreaker;
use bytes::Bytes;
use fcds_core::engine::{
    EngineBuilder, FrequencyFamily, HllFamily, QuantilesFamily, StreamEngine, ThetaFamily,
};
use fcds_core::PropagationBackendKind;
use fcds_sketches::wire::SketchFamily;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Per-worker dispatch handle, cloned into every connection thread.
#[derive(Clone)]
pub(crate) struct WorkerHandle {
    pub(crate) tx: SyncSender<Vec<u64>>,
    pub(crate) breaker: Arc<CircuitBreaker>,
    pub(crate) dead: Arc<AtomicBool>,
}

/// What a worker reports when it exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkerExit {
    /// Queue drained and writer flushed cleanly.
    Flushed,
    /// Writer flush failed (typed engine error, already counted).
    FlushFailed,
    /// The worker panicked (isolated; breaker tripped).
    Panicked,
}

/// One registered stream: a running engine plus everything the server
/// scopes to it (workers, breakers, replica slots, pushed images).
pub(crate) struct StreamState {
    pub(crate) key: Vec<u8>,
    pub(crate) family: SketchFamily,
    pub(crate) engine: Box<dyn StreamEngine>,
    pub(crate) workers: Vec<WorkerHandle>,
    pub(crate) worker_joins: Mutex<Vec<JoinHandle<WorkerExit>>>,
    pub(crate) next_worker: AtomicUsize,
    /// Set by retire/drain; workers exit once their queue is dry.
    pub(crate) retired: AtomicBool,
    /// Items ingested into this stream's engine (diagnostics).
    pub(crate) items: AtomicU64,
    /// Replace-by-source replica slots: the latest image pushed by each
    /// replica source id. Replacement (not accumulation) is what makes
    /// periodic pushes idempotent for the non-idempotent families
    /// (Quantiles concat, Misra–Gries counter addition).
    pub(crate) replicas: Mutex<HashMap<u64, Bytes>>,
    /// Accumulating v2 merge store (non-REPLACE merges), bounded by
    /// `merge_store_cap`.
    pub(crate) pushed: Mutex<Vec<Bytes>>,
    /// The wire image recovered from this stream's snapshot at boot
    /// (`None` for streams created live). Fanned into queries,
    /// checkpoints and replica pushes exactly like a merged image — the
    /// live engine restarts empty, so this slot *is* the pre-crash
    /// state.
    pub(crate) recovered: Mutex<Option<Bytes>>,
    /// [`Self::items`] as of the last durable snapshot (0 = never
    /// persisted). `items - persisted_seq` is the stream's snapshot lag:
    /// the ingest a crash right now would lose.
    pub(crate) persisted_seq: AtomicU64,
    /// Set when non-ingest durable state changes (an accepted v2 merge)
    /// so the checkpointer rewrites the snapshot even though `items`
    /// did not move.
    pub(crate) snapshot_dirty: AtomicBool,
}

impl StreamState {
    /// Everything query-time fan-in sees: the live engine's image, the
    /// boot-recovered snapshot image (if any), the newest image per
    /// replica source, and all accumulated pushes. Never empty — the
    /// live image is always present.
    pub(crate) fn images(&self) -> Vec<Bytes> {
        let mut v = vec![self.engine.wire_image()];
        {
            let recovered = self.recovered.lock().unwrap_or_else(|e| e.into_inner());
            v.extend(recovered.iter().cloned());
        }
        {
            let replicas = self.replicas.lock().unwrap_or_else(|e| e.into_inner());
            v.extend(replicas.values().cloned());
        }
        {
            let pushed = self.pushed.lock().unwrap_or_else(|e| e.into_inner());
            v.extend(pushed.iter().cloned());
        }
        v
    }

    /// Joins every worker thread, returning
    /// `(flushed, flush_failed, panicked, leaked)` counts. Callers set
    /// [`Self::retired`] (or the server-wide draining flag) first so
    /// the workers actually exit.
    pub(crate) fn join_workers(&self) -> (usize, usize, usize, usize) {
        let joins = {
            let mut g = self.worker_joins.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *g)
        };
        let (mut flushed, mut failed, mut panicked, mut leaked) = (0, 0, 0, 0);
        for j in joins {
            match j.join() {
                Ok(WorkerExit::Flushed) => flushed += 1,
                Ok(WorkerExit::FlushFailed) => failed += 1,
                Ok(WorkerExit::Panicked) => panicked += 1,
                Err(_) => leaked += 1, // catch_unwind means this can't happen
            }
        }
        (flushed, failed, panicked, leaked)
    }
}

/// A public, copyable description of one live stream
/// ([`crate::ServerHandle::list_streams`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct StreamInfo {
    /// The stream key.
    pub key: Vec<u8>,
    /// The family the stream was created with.
    pub family: SketchFamily,
    /// Items ingested into the stream so far.
    pub items: u64,
    /// [`Self::items`] as of the stream's last durable snapshot (0 when
    /// never persisted or persistence is off).
    pub last_persisted_seq: u64,
    /// `items - last_persisted_seq`: the acked ingest a crash right now
    /// would lose. Bounded by one `snapshot_interval` of traffic while
    /// the checkpointer is healthy.
    pub snapshot_lag: u64,
}

/// Why [`Registry::get_or_create`] refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CreateError {
    /// The key exists with a different family.
    FamilyMismatch {
        /// The family the stream was created with.
        expected: SketchFamily,
    },
    /// The registry holds `max_streams` streams already.
    AtCapacity,
    /// Engine construction failed (invalid config).
    Build(String),
}

/// The concurrent key → stream map. One mutex over the map: lookups
/// and creates are short (engine construction happens inside the lock
/// exactly once per key, which is also what makes concurrent
/// create-on-first-ingest of the same key race-free).
pub(crate) struct Registry {
    streams: Mutex<HashMap<Vec<u8>, Arc<StreamState>>>,
    max_streams: usize,
}

impl Registry {
    pub(crate) fn new(max_streams: usize) -> Self {
        Registry {
            streams: Mutex::new(HashMap::new()),
            max_streams: max_streams.max(1),
        }
    }

    pub(crate) fn get(&self, key: &[u8]) -> Option<Arc<StreamState>> {
        self.streams
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
    }

    /// Looks up `key`, creating it with `make` if absent. Returns the
    /// stream and whether this call created it.
    pub(crate) fn get_or_create(
        &self,
        key: &[u8],
        family: SketchFamily,
        make: impl FnOnce() -> Result<Arc<StreamState>, String>,
    ) -> Result<(Arc<StreamState>, bool), CreateError> {
        let mut map = self.streams.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = map.get(key) {
            if existing.family != family {
                return Err(CreateError::FamilyMismatch {
                    expected: existing.family,
                });
            }
            return Ok((Arc::clone(existing), false));
        }
        if map.len() >= self.max_streams {
            return Err(CreateError::AtCapacity);
        }
        let state = make().map_err(CreateError::Build)?;
        map.insert(key.to_vec(), Arc::clone(&state));
        Ok((state, true))
    }

    /// Removes `key` from the map and returns its state for the caller
    /// to drain. `None` if the key was not registered.
    pub(crate) fn retire(&self, key: &[u8]) -> Option<Arc<StreamState>> {
        self.streams
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(key)
    }

    /// Snapshot of every live stream.
    pub(crate) fn list(&self) -> Vec<Arc<StreamState>> {
        self.streams
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect()
    }

    /// Removes and returns every stream (graceful drain).
    pub(crate) fn drain_all(&self) -> Vec<Arc<StreamState>> {
        self.streams
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain()
            .map(|(_, s)| s)
            .collect()
    }
}

/// The per-family engine factory: maps a wire family code onto the
/// unified [`EngineBuilder`], sharing the server's concurrency shape
/// (`writers`, backend) across families. Θ takes the configured `lg_k`;
/// the other families run at their documented defaults.
pub(crate) fn build_engine(
    family: SketchFamily,
    lg_k: u8,
    backend: PropagationBackendKind,
    writers: usize,
) -> Result<Box<dyn StreamEngine>, String> {
    let writers = writers.max(1);
    let built = match family {
        SketchFamily::Theta => EngineBuilder::<ThetaFamily>::new()
            .accuracy(lg_k as usize)
            .writers(writers)
            .backend(backend)
            .build_boxed(),
        SketchFamily::Hll => EngineBuilder::<HllFamily>::new()
            .writers(writers)
            .backend(backend)
            .build_boxed(),
        SketchFamily::Quantiles => EngineBuilder::<QuantilesFamily<u64>>::new()
            .writers(writers)
            .backend(backend)
            .build_boxed(),
        SketchFamily::Frequency => EngineBuilder::<FrequencyFamily<u64>>::new()
            .writers(writers)
            .backend(backend)
            .build_boxed(),
    };
    built.map_err(|e| e.to_string())
}
