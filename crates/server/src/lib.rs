//! `fcds-server`: a fault-tolerant network tier in front of the
//! concurrent sketch engine.
//!
//! Thread-per-connection over `std::net` (no async runtime — the build
//! environment is offline and the engine's hot path is synchronous
//! anyway), speaking the length-prefixed [`frame`] protocol whose
//! payloads are the sketch wire envelopes plus a raw batch-ingest
//! frame. Robustness is the design center:
//!
//! * **Deadlines** — every connection has a mid-frame read deadline and
//!   a write timeout, so a stalled or severed peer can hold a thread
//!   for at most one frame.
//! * **Backpressure** — ingest flows through bounded per-worker queues;
//!   a full queue sheds the batch with an explicit
//!   [`frame::NackCode::Overload`] NACK, never a silent drop.
//! * **Circuit breaking** — each ingest worker is guarded by a
//!   closed/open/half-open [`breaker::CircuitBreaker`]; a worker that
//!   keeps failing is taken out of rotation and probed after a
//!   cooldown.
//! * **Panic isolation** — connection threads and ingest workers run
//!   under `catch_unwind`; a poisoned request can kill at most the
//!   thread it is on, and a dead worker trips its breaker instead of
//!   wedging the engine. A dead *propagator* (the engine-level fault)
//!   surfaces as `FlushError` from the worker's writer and is handled
//!   the same way.
//! * **Graceful drain** — [`ServerHandle::shutdown`] stops admitting
//!   ingest, drains the queues, flushes every writer, quiesces every
//!   engine (republishing images), then closes the listener and joins
//!   every thread, returning a [`DrainReport`].
//!
//! # Multi-stream service (FCF1 v2)
//!
//! One server hosts many named streams, each a [`fcds_core::engine::
//! StreamEngine`] of any sketch family, looked up through the
//! [`registry`](StreamInfo) by the stream key carried on v2 frames
//! ([`frame::FLAG_STREAM`]). Streams are created on first ingest or
//! merge with the frame's declared family, are isolated from each other
//! (private workers, queues and breakers per stream), and can be
//! retired at runtime ([`ServerHandle::retire_stream`]). v1 frames
//! (flags 0) keep their exact pre-v2 semantics, routed to the built-in
//! [`DEFAULT_STREAM`] Θ stream.
//!
//! **Replica sync**: configure [`ServerConfig::replica_peer`] and the
//! server periodically encodes every stream's live wire image and ships
//! it to the peer as a v2 REPLACE merge ([`frame::FLAG_REPLACE`]) keyed
//! by [`ServerConfig::replica_source_id`]. The peer stores the newest
//! image per source and fans it in at query time with the multiway
//! merge kernels, so two servers ingesting disjoint substreams converge
//! on the union within one sync period. Replacement — not accumulation
//! — is what keeps periodic re-pushes idempotent for the families whose
//! merges are not (Quantiles concat, Misra–Gries counter addition).

pub mod breaker;
pub mod client;
pub mod frame;
mod registry;

pub use breaker::{BreakerState, CircuitBreaker};
pub use client::{Client, Reply};
pub use frame::{FrameType, NackCode};
pub use registry::StreamInfo;

use crate::frame::{
    check_payload, encode_frame, encode_nack_payload, parse_header, split_stream_prefix, Frame,
    HeaderError, StreamPrefix, FLAG_REPLACE, FLAG_STREAM, FRAME_HEADER_LEN,
};
use crate::registry::{build_engine, CreateError, Registry, StreamState, WorkerExit, WorkerHandle};
use bytes::Bytes;
use fcds_core::engine::EngineWriter;
use fcds_core::PropagationBackendKind;
use fcds_sketches::theta::ThetaRead;
use fcds_sketches::wire::{
    hll_multiway_merge, ladder_multiway_concat, mg_multiway_merge, peek, theta_multiway_union,
    HllWireView, LadderWireView, MgWireView, SketchFamily, ThetaWireView, WireEncode,
};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked socket reads and idle loops wake up to check the
/// shutdown/drain flags. Deadlines are enforced at this granularity.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// The key of the built-in Θ stream every v1 frame is routed to. Always
/// present; cannot be retired.
pub const DEFAULT_STREAM: &[u8] = b"default";

/// Server configuration. `Default` is sized for a small host (the 1-CPU
/// CI container): two ingest workers, 64-deep queues, 1 MiB frames.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks a free port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Number of ingest worker threads, each owning one engine writer.
    pub ingest_workers: usize,
    /// Bound of each worker's ingest queue, in batches. A full queue
    /// sheds with [`NackCode::Overload`].
    pub queue_depth: usize,
    /// Maximum accepted frame payload, bytes. Larger declarations are
    /// NACKed ([`NackCode::PayloadTooLarge`]) and the connection closed.
    pub max_frame_payload: u32,
    /// Mid-frame read deadline: once a frame's first byte arrives, the
    /// rest must arrive within this window or the connection is closed
    /// (with a best-effort [`NackCode::Timeout`] NACK).
    pub frame_deadline: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// `lg_k` of the live Θ engine.
    pub lg_k: u8,
    /// Propagation backend for the live engine.
    pub backend: PropagationBackendKind,
    /// Consecutive failures that open a worker's circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before admitting a half-open
    /// probe.
    pub breaker_cooldown: Duration,
    /// Maximum retained wire images per sketch family in the merge
    /// store; beyond it, merges shed with [`NackCode::Overload`].
    pub merge_store_cap: usize,
    /// Fault-injection hook for the robustness suite: an ingest worker
    /// that sees this item value panics, exercising panic isolation and
    /// the breaker over a real connection. `None` in production.
    pub fault_panic_on: Option<u64>,
    /// Ingest worker threads per *non-default* stream (the default
    /// stream uses [`Self::ingest_workers`]).
    pub stream_workers: usize,
    /// Maximum simultaneously registered streams (including the default
    /// stream); creation beyond it NACKs with [`NackCode::Overload`].
    pub max_streams: usize,
    /// Replica peer address (`host:port`). `Some` turns on the
    /// background pusher: every [`Self::replica_interval`] the server
    /// ships each stream's live wire image to the peer as a v2 REPLACE
    /// merge under [`Self::replica_source_id`].
    pub replica_peer: Option<String>,
    /// Push period of the replica pusher.
    pub replica_interval: Duration,
    /// This server's replica source id — the slot its pushes replace on
    /// the peer. Two peers pushing to each other must use distinct ids.
    pub replica_source_id: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ingest_workers: 2,
            queue_depth: 64,
            max_frame_payload: 1 << 20,
            frame_deadline: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            lg_k: 12,
            backend: PropagationBackendKind::WriterAssisted,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
            merge_store_cap: 1024,
            fault_panic_on: None,
            stream_workers: 1,
            max_streams: 64,
            replica_peer: None,
            replica_interval: Duration::from_millis(250),
            replica_source_id: 1,
        }
    }
}

/// Monotone server counters (all `Relaxed` — diagnostics, not
/// synchronisation).
#[derive(Debug, Default)]
struct Stats {
    conns_opened: AtomicU64,
    conns_closed: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    nacks: AtomicU64,
    sheds: AtomicU64,
    ingest_batches: AtomicU64,
    ingest_items: AtomicU64,
    merges_accepted: AtomicU64,
    worker_panics: AtomicU64,
    conn_panics: AtomicU64,
    flush_errors: AtomicU64,
    read_timeouts: AtomicU64,
    streams_created: AtomicU64,
    streams_retired: AtomicU64,
    replica_pushes: AtomicU64,
    replica_push_errors: AtomicU64,
}

/// A point-in-time copy of the server's diagnostic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub conns_opened: u64,
    /// Connections that have finished (closed or errored).
    pub conns_closed: u64,
    /// Frames successfully decoded from clients.
    pub frames_in: u64,
    /// Frames written to clients.
    pub frames_out: u64,
    /// NACK frames sent (every rejected request produces exactly one).
    pub nacks: u64,
    /// Ingest batches shed on full queues.
    pub sheds: u64,
    /// Ingest batches accepted into worker queues.
    pub ingest_batches: u64,
    /// Stream items ingested into the live engine.
    pub ingest_items: u64,
    /// Wire images accepted into the merge store.
    pub merges_accepted: u64,
    /// Ingest-worker panics isolated (each kills one worker, trips its
    /// breaker, and takes nothing else down).
    pub worker_panics: u64,
    /// Connection-thread panics isolated.
    pub conn_panics: u64,
    /// Writer flushes that failed with a typed `FlushError`.
    pub flush_errors: u64,
    /// Connections closed for blowing the mid-frame read deadline.
    pub read_timeouts: u64,
    /// Streams created (create-on-first-ingest/merge plus the default
    /// stream).
    pub streams_created: u64,
    /// Streams retired at runtime.
    pub streams_retired: u64,
    /// Replica images successfully pushed (acked by the peer).
    pub replica_pushes: u64,
    /// Replica pushes that failed (connect/write error or peer NACK).
    pub replica_push_errors: u64,
}

impl Stats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            conns_opened: self.conns_opened.load(Ordering::Relaxed),
            conns_closed: self.conns_closed.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            nacks: self.nacks.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            ingest_batches: self.ingest_batches.load(Ordering::Relaxed),
            ingest_items: self.ingest_items.load(Ordering::Relaxed),
            merges_accepted: self.merges_accepted.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            conn_panics: self.conn_panics.load(Ordering::Relaxed),
            flush_errors: self.flush_errors.load(Ordering::Relaxed),
            read_timeouts: self.read_timeouts.load(Ordering::Relaxed),
            streams_created: self.streams_created.load(Ordering::Relaxed),
            streams_retired: self.streams_retired.load(Ordering::Relaxed),
            replica_pushes: self.replica_pushes.load(Ordering::Relaxed),
            replica_push_errors: self.replica_push_errors.load(Ordering::Relaxed),
        }
    }
}

/// Bounded per-family store of merged-in wire images, validated on
/// arrival (capped `peek` + full zero-copy view parse) and fanned in at
/// query time with the multiway kernels.
struct MergeStore {
    families: [Mutex<Vec<Bytes>>; 4],
    cap: usize,
}

impl MergeStore {
    fn new(cap: usize) -> Self {
        MergeStore {
            families: [
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
            ],
            cap,
        }
    }

    fn slot(&self, family: SketchFamily) -> &Mutex<Vec<Bytes>> {
        &self.families[(family.code() - 1) as usize]
    }

    /// Appends an already-validated image; `Err` when the family's
    /// store is at capacity (the caller sheds).
    fn push(&self, family: SketchFamily, image: Bytes) -> Result<(), ()> {
        let mut v = self.slot(family).lock().unwrap_or_else(|e| e.into_inner());
        if v.len() >= self.cap {
            return Err(());
        }
        v.push(image);
        Ok(())
    }

    fn images(&self, family: SketchFamily) -> Vec<Bytes> {
        self.slot(family)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Run-state flags shared by every thread of the server.
#[derive(Debug, Default)]
struct Control {
    /// Stop admitting ingest/merge work (queries still served).
    draining: AtomicBool,
    /// Tear everything down: listener, connections, workers.
    shutdown: AtomicBool,
    /// A client sent a `Shutdown` frame; the embedder (e.g. the binary)
    /// polls this and calls [`ServerHandle::shutdown`].
    drain_requested: AtomicBool,
}

/// Everything a connection thread needs.
struct ServerCtx {
    cfg: ServerConfig,
    ctl: Control,
    stats: Stats,
    registry: Registry,
    store: MergeStore,
    /// Worker-exit counts from streams retired before the drain, folded
    /// into the final [`DrainReport`].
    retired_flushed: AtomicUsize,
    retired_flush_failed: AtomicUsize,
    retired_panicked: AtomicUsize,
}

impl ServerCtx {
    /// The built-in v1 stream. Present from [`serve`] until drain.
    fn default_stream(&self) -> Option<Arc<StreamState>> {
        self.registry.get(DEFAULT_STREAM)
    }
}

/// The running server: owns the accept loop, the stream registry (and
/// every stream's worker threads), and the optional replica pusher.
/// Obtain via [`serve`]; stop via [`Self::shutdown`] (or drop, which
/// performs an abrupt but still joined teardown).
pub struct ServerHandle {
    ctx: Arc<ServerCtx>,
    addr: SocketAddr,
    accept_join: Option<JoinHandle<()>>,
    pusher_join: Option<JoinHandle<()>>,
    conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>>,
    drained: bool,
}

/// Outcome of a graceful drain: how cleanly the server went down.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct DrainReport {
    /// Workers whose queues drained and writers flushed cleanly.
    pub workers_flushed: usize,
    /// Workers whose final flush failed with a typed error.
    pub workers_flush_failed: usize,
    /// Workers that had died by panic before or during the drain.
    pub workers_panicked: usize,
    /// Threads that could not be joined (must be 0 — anything else is a
    /// leak).
    pub leaked_threads: usize,
    /// Final counter snapshot.
    pub stats: StatsSnapshot,
    /// Final estimate of the live engine after quiesce.
    pub final_estimate: f64,
}

/// Spawns a fully-wired stream: builds the engine for `family`, starts
/// `workers_n` worker threads each owning one engine writer, and
/// returns the state ready to insert into the registry.
fn spawn_stream(
    ctx: &Arc<ServerCtx>,
    key: &[u8],
    family: SketchFamily,
    workers_n: usize,
) -> Result<Arc<StreamState>, String> {
    let workers_n = workers_n.max(1);
    let engine = build_engine(family, ctx.cfg.lg_k, ctx.cfg.backend, workers_n)?;
    let mut handles = Vec::with_capacity(workers_n);
    let mut rxs: Vec<Receiver<Vec<u64>>> = Vec::with_capacity(workers_n);
    for _ in 0..workers_n {
        let (tx, rx) = sync_channel::<Vec<u64>>(ctx.cfg.queue_depth.max(1));
        handles.push(WorkerHandle {
            tx,
            breaker: Arc::new(CircuitBreaker::new(
                ctx.cfg.breaker_threshold.max(1),
                ctx.cfg.breaker_cooldown,
            )),
            dead: Arc::new(AtomicBool::new(false)),
        });
        rxs.push(rx);
    }
    let state = Arc::new(StreamState {
        key: key.to_vec(),
        family,
        engine,
        workers: handles,
        worker_joins: Mutex::new(Vec::with_capacity(workers_n)),
        next_worker: AtomicUsize::new(0),
        retired: AtomicBool::new(false),
        items: AtomicU64::new(0),
        replicas: Mutex::new(std::collections::HashMap::new()),
        pushed: Mutex::new(Vec::new()),
    });
    let mut joins = Vec::with_capacity(workers_n);
    for (i, rx) in rxs.into_iter().enumerate() {
        let ctx = Arc::clone(ctx);
        let state2 = Arc::clone(&state);
        let writer = state.engine.writer();
        joins.push(
            std::thread::Builder::new()
                .name(format!("fcds-stream-worker-{i}"))
                .spawn(move || stream_worker(ctx, state2, i, writer, rx))
                .map_err(|e| format!("spawn stream worker: {e}"))?,
        );
    }
    *state.worker_joins.lock().unwrap_or_else(|e| e.into_inner()) = joins;
    ctx.stats.streams_created.fetch_add(1, Ordering::Relaxed);
    Ok(state)
}

/// Starts the server: binds the listener, spins up the default Θ stream
/// and its ingest workers (plus the replica pusher when configured),
/// and begins accepting connections.
///
/// # Errors
///
/// Propagates listener bind errors; panics only on invalid engine
/// configuration (caller-controlled).
pub fn serve(cfg: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let store = MergeStore::new(cfg.merge_store_cap);
    let max_streams = cfg.max_streams.max(1);
    let ctx = Arc::new(ServerCtx {
        cfg,
        ctl: Control::default(),
        stats: Stats::default(),
        registry: Registry::new(max_streams),
        store,
        retired_flushed: AtomicUsize::new(0),
        retired_flush_failed: AtomicUsize::new(0),
        retired_panicked: AtomicUsize::new(0),
    });

    let default_workers = ctx.cfg.ingest_workers.max(1);
    ctx.registry
        .get_or_create(DEFAULT_STREAM, SketchFamily::Theta, || {
            spawn_stream(&ctx, DEFAULT_STREAM, SketchFamily::Theta, default_workers)
        })
        .map_err(|e| io::Error::other(format!("default stream: {e:?}")))?;

    let conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept_join = {
        let ctx = Arc::clone(&ctx);
        let conn_joins = Arc::clone(&conn_joins);
        std::thread::Builder::new()
            .name("fcds-accept".to_string())
            .spawn(move || accept_loop(listener, ctx, conn_joins))
            .expect("spawn accept loop")
    };

    let pusher_join = ctx.cfg.replica_peer.clone().map(|peer| {
        let ctx = Arc::clone(&ctx);
        std::thread::Builder::new()
            .name("fcds-replica-push".to_string())
            .spawn(move || replica_pusher(ctx, peer))
            .expect("spawn replica pusher")
    });

    Ok(ServerHandle {
        ctx,
        addr,
        accept_join: Some(accept_join),
        pusher_join,
        conn_joins,
        drained: false,
    })
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.ctx.stats.snapshot()
    }

    /// Whether any stream lost an ingest worker (panic or dead
    /// propagator) — degraded but still serving.
    pub fn is_degraded(&self) -> bool {
        self.ctx
            .registry
            .list()
            .iter()
            .any(|s| s.workers.iter().any(|w| w.dead.load(Ordering::Acquire)))
    }

    /// Whether some client requested a drain with a `Shutdown` frame.
    pub fn drain_requested(&self) -> bool {
        self.ctx.ctl.drain_requested.load(Ordering::Acquire)
    }

    /// Estimate of the default stream's live Θ engine (concurrent query
    /// path).
    pub fn live_estimate(&self) -> f64 {
        self.ctx
            .default_stream()
            .and_then(|s| s.engine.estimate())
            .unwrap_or(0.0)
    }

    /// Every live stream: key, family, items ingested.
    pub fn list_streams(&self) -> Vec<StreamInfo> {
        self.ctx
            .registry
            .list()
            .iter()
            .map(|s| StreamInfo {
                key: s.key.clone(),
                family: s.family,
                items: s.items.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Retires a stream: removes it from the registry, drains and joins
    /// its workers, and quiesces its engine. Returns `false` for the
    /// default stream (not retirable) or an unknown key. A later v2
    /// ingest/merge under the same key creates a fresh stream.
    pub fn retire_stream(&self, key: &[u8]) -> bool {
        if key == DEFAULT_STREAM {
            return false;
        }
        let Some(state) = self.ctx.registry.retire(key) else {
            return false;
        };
        state.retired.store(true, Ordering::Release);
        let (flushed, failed, panicked, _leaked) = state.join_workers();
        self.ctx
            .retired_flushed
            .fetch_add(flushed, Ordering::Relaxed);
        self.ctx
            .retired_flush_failed
            .fetch_add(failed, Ordering::Relaxed);
        self.ctx
            .retired_panicked
            .fetch_add(panicked, Ordering::Relaxed);
        state.engine.quiesce();
        self.ctx
            .stats
            .streams_retired
            .fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Gracefully drains and stops the server:
    ///
    /// 1. stop admitting ingest/merge (`Draining` NACKs from here on);
    /// 2. let workers drain their queues and flush their writers;
    /// 3. quiesce the engine (merges every hand-off, republishes
    ///    images);
    /// 4. close the listener and every connection, joining all threads.
    pub fn shutdown(mut self) -> DrainReport {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> DrainReport {
        self.drained = true;
        self.ctx.ctl.draining.store(true, Ordering::Release);

        // Carry over worker exits from streams retired before the
        // drain, then drain every remaining stream.
        let mut workers_flushed = self.ctx.retired_flushed.load(Ordering::Relaxed);
        let mut workers_flush_failed = self.ctx.retired_flush_failed.load(Ordering::Relaxed);
        let mut workers_panicked = self.ctx.retired_panicked.load(Ordering::Relaxed);
        let mut leaked_threads = 0usize;
        let mut final_estimate = 0.0f64;
        for state in self.ctx.registry.drain_all() {
            state.retired.store(true, Ordering::Release);
            let (flushed, failed, panicked, leaked) = state.join_workers();
            workers_flushed += flushed;
            workers_flush_failed += failed;
            workers_panicked += panicked;
            leaked_threads += leaked;
            // Writers are flushed (or dead); merge what is in flight
            // and republish every shard image.
            state.engine.quiesce();
            if state.key == DEFAULT_STREAM {
                final_estimate = state.engine.estimate().unwrap_or(0.0);
            }
        }

        self.ctx.ctl.shutdown.store(true, Ordering::Release);
        if let Some(j) = self.pusher_join.take() {
            if j.join().is_err() {
                leaked_threads += 1;
            }
        }
        if let Some(j) = self.accept_join.take() {
            if j.join().is_err() {
                leaked_threads += 1;
            }
        }
        let joins = {
            let mut g = self.conn_joins.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *g)
        };
        for j in joins {
            if j.join().is_err() {
                leaked_threads += 1;
            }
        }

        DrainReport {
            workers_flushed,
            workers_flush_failed,
            workers_panicked,
            leaked_threads,
            stats: self.ctx.stats.snapshot(),
            final_estimate,
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.drained {
            let _ = self.shutdown_inner();
        }
    }
}

/// The per-stream ingest worker: drains its bounded queue into its
/// engine writer (family-generic through [`EngineWriter`]). Runs under
/// `catch_unwind`; a panic (injected faults, engine bugs) kills only
/// this worker, trips its breaker, and marks it dead so dispatch routes
/// around it — workers of *other* streams are untouched, which is the
/// per-stream isolation property the registry suite asserts.
fn stream_worker(
    ctx: Arc<ServerCtx>,
    state: Arc<StreamState>,
    index: usize,
    writer: Box<dyn EngineWriter>,
    rx: Receiver<Vec<u64>>,
) -> WorkerExit {
    let me = state.workers[index].clone();
    let exit = catch_unwind(AssertUnwindSafe(|| {
        stream_worker_impl(&ctx, &state, &me, writer, &rx)
    }));
    match exit {
        Ok(e) => e,
        Err(_) => {
            me.dead.store(true, Ordering::Release);
            me.breaker.trip();
            ctx.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            WorkerExit::Panicked
        }
    }
}

fn stream_worker_impl(
    ctx: &ServerCtx,
    state: &StreamState,
    me: &WorkerHandle,
    mut writer: Box<dyn EngineWriter>,
    rx: &Receiver<Vec<u64>>,
) -> WorkerExit {
    loop {
        match rx.recv_timeout(POLL_INTERVAL) {
            Ok(batch) => {
                if let Some(poison) = ctx.cfg.fault_panic_on {
                    if batch.contains(&poison) {
                        panic!("injected fault: poisoned ingest item {poison}");
                    }
                }
                let n = batch.len() as u64;
                writer.ingest_batch(&batch);
                // Surface engine-side propagation faults (a dead
                // propagator thread) promptly instead of only at drain:
                // flush after each batch. With the writer-assisted
                // backend this is propagation the writer performs
                // anyway; with the dedicated-thread backend it bounds
                // the un-acked window to one batch.
                match writer.flush() {
                    Ok(()) => {
                        ctx.stats.ingest_items.fetch_add(n, Ordering::Relaxed);
                        state.items.fetch_add(n, Ordering::Relaxed);
                        me.breaker.record_success();
                    }
                    Err(_e) => {
                        ctx.stats.flush_errors.fetch_add(1, Ordering::Relaxed);
                        me.dead.store(true, Ordering::Release);
                        me.breaker.trip();
                        return WorkerExit::FlushFailed;
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if ctx.ctl.draining.load(Ordering::Acquire)
                    || ctx.ctl.shutdown.load(Ordering::Acquire)
                    || state.retired.load(Ordering::Acquire)
                {
                    // Dispatch stopped admitting before the flag was
                    // set, so an empty poll during a drain/retire means
                    // the queue is finally dry: flush and exit.
                    return match writer.flush() {
                        Ok(()) => WorkerExit::Flushed,
                        Err(_) => {
                            ctx.stats.flush_errors.fetch_add(1, Ordering::Relaxed);
                            me.dead.store(true, Ordering::Release);
                            me.breaker.trip();
                            WorkerExit::FlushFailed
                        }
                    };
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                // All senders gone (server handle dropped mid-teardown).
                return match writer.flush() {
                    Ok(()) => WorkerExit::Flushed,
                    Err(_) => WorkerExit::FlushFailed,
                };
            }
        }
    }
}

/// The background replica pusher: every `replica_interval`, encode each
/// live stream's wire image and ship it to the peer as a v2 REPLACE
/// merge under this server's source id. Connection failures are counted
/// and retried next round — the pusher never takes the server down.
fn replica_pusher(ctx: Arc<ServerCtx>, peer: String) {
    let mut client: Option<Client> = None;
    let mut last_push = Instant::now();
    loop {
        if ctx.ctl.shutdown.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(POLL_INTERVAL);
        if last_push.elapsed() < ctx.cfg.replica_interval {
            continue;
        }
        last_push = Instant::now();
        for state in ctx.registry.list() {
            let image = state.engine.wire_image();
            if client.is_none() {
                client = Client::connect(peer.as_str(), ctx.cfg.write_timeout).ok();
            }
            let Some(c) = client.as_mut() else {
                ctx.stats
                    .replica_push_errors
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            };
            let pushed =
                c.merge_stream_from(state.family, &state.key, ctx.cfg.replica_source_id, &image);
            match pushed {
                Ok(Reply::Ack { .. }) => {
                    ctx.stats.replica_pushes.fetch_add(1, Ordering::Relaxed);
                }
                Ok(_) => {
                    // Typed NACK (peer draining, at capacity…): count
                    // and keep the connection — framing is intact.
                    ctx.stats
                        .replica_push_errors
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    ctx.stats
                        .replica_push_errors
                        .fetch_add(1, Ordering::Relaxed);
                    client = None; // reconnect next round
                }
            }
        }
    }
}

/// Accepts connections until shutdown; each connection gets its own
/// thread wrapped in `catch_unwind`.
fn accept_loop(
    listener: TcpListener,
    ctx: Arc<ServerCtx>,
    conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut conn_id = 0u64;
    loop {
        if ctx.ctl.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                conn_id += 1;
                ctx.stats.conns_opened.fetch_add(1, Ordering::Relaxed);
                let ctx2 = Arc::clone(&ctx);
                let handle = std::thread::Builder::new()
                    .name(format!("fcds-conn-{conn_id}"))
                    .spawn(move || {
                        let ctx3 = Arc::clone(&ctx2);
                        let r = catch_unwind(AssertUnwindSafe(move || {
                            handle_connection(stream, &ctx2);
                        }));
                        if r.is_err() {
                            ctx3.stats.conn_panics.fetch_add(1, Ordering::Relaxed);
                        }
                        ctx3.stats.conns_closed.fetch_add(1, Ordering::Relaxed);
                    })
                    .expect("spawn connection thread");
                let mut joins = conn_joins.lock().unwrap_or_else(|e| e.into_inner());
                // Reap finished threads so the vec stays bounded by the
                // number of *live* connections.
                joins.retain(|j| !j.is_finished());
                joins.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => {
                // Transient accept errors (aborted handshakes) — retry.
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }
}

/// What the frame reader produced.
enum ReadEvent {
    /// A validated frame.
    Frame(Frame),
    /// A protocol violation; NACK with `err`'s code and close if
    /// `err.closes_connection()`.
    Bad { seq: u16, err: HeaderError },
    /// The peer closed (or the server is shutting down) — exit quietly.
    Closed,
    /// Mid-frame deadline blown: best-effort Timeout NACK, then close.
    TimedOut { seq: u16 },
}

/// Reads exactly `buf.len()` bytes, polling the shutdown flag and
/// enforcing `deadline` (set by the caller once a frame has started).
fn read_exact_ctl(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: &mut Option<Instant>,
    ctx: &ServerCtx,
) -> io::Result<ReadProgress> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Ok(ReadProgress::Closed),
            Ok(n) => {
                filled += n;
                if deadline.is_none() {
                    *deadline = Some(Instant::now() + ctx.cfg.frame_deadline);
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if ctx.ctl.shutdown.load(Ordering::Acquire) {
                    return Ok(ReadProgress::Closed);
                }
                if let Some(d) = *deadline {
                    if Instant::now() >= d {
                        return Ok(ReadProgress::TimedOut);
                    }
                }
                if filled == 0 {
                    // Idle between frames: not an error, keep polling.
                    return Ok(ReadProgress::Idle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadProgress::Done)
}

enum ReadProgress {
    Done,
    Idle,
    Closed,
    TimedOut,
}

/// Reads one frame (or classifies why one could not be read).
fn read_frame(stream: &mut TcpStream, ctx: &ServerCtx) -> io::Result<ReadEvent> {
    let mut header_bytes = [0u8; FRAME_HEADER_LEN];
    let mut deadline: Option<Instant> = None;
    // Header: loop on Idle (no frame started yet).
    loop {
        match read_exact_ctl(stream, &mut header_bytes, &mut deadline, ctx)? {
            ReadProgress::Done => break,
            ReadProgress::Idle => continue,
            ReadProgress::Closed => return Ok(ReadEvent::Closed),
            ReadProgress::TimedOut => return Ok(ReadEvent::TimedOut { seq: 0 }),
        }
    }
    // Sequence number for NACKs even when validation fails (only
    // meaningful if the magic matched; 0 otherwise).
    let raw_seq = u16::from_le_bytes(header_bytes[6..8].try_into().expect("2 bytes"));
    let header = match parse_header(&header_bytes, ctx.cfg.max_frame_payload, true) {
        Ok(h) => h,
        Err(err) => {
            let seq = if matches!(err, HeaderError::BadMagic { .. }) {
                0
            } else {
                raw_seq
            };
            // For keep-open violations (unknown type, bad flags) the
            // framing is intact: skim the declared payload so the next
            // frame starts at a boundary. The declared length is still
            // capped before we trust it.
            if !err.closes_connection() {
                let declared = u32::from_le_bytes(header_bytes[8..12].try_into().expect("4 bytes"));
                if declared > ctx.cfg.max_frame_payload {
                    return Ok(ReadEvent::Bad {
                        seq,
                        err: HeaderError::PayloadTooLarge {
                            declared,
                            cap: ctx.cfg.max_frame_payload,
                        },
                    });
                }
                let mut discard = vec![0u8; declared as usize];
                loop {
                    match read_exact_ctl(stream, &mut discard, &mut deadline, ctx)? {
                        ReadProgress::Done => break,
                        ReadProgress::Idle => continue,
                        ReadProgress::Closed => return Ok(ReadEvent::Closed),
                        ReadProgress::TimedOut => return Ok(ReadEvent::TimedOut { seq }),
                    }
                }
            }
            return Ok(ReadEvent::Bad { seq, err });
        }
    };
    let mut payload = vec![0u8; header.payload_len as usize];
    loop {
        match read_exact_ctl(stream, &mut payload, &mut deadline, ctx)? {
            ReadProgress::Done => break,
            ReadProgress::Idle => continue,
            ReadProgress::Closed => return Ok(ReadEvent::Closed),
            ReadProgress::TimedOut => return Ok(ReadEvent::TimedOut { seq: header.seq }),
        }
    }
    if let Err(err) = check_payload(&header, &payload) {
        return Ok(ReadEvent::Bad {
            seq: header.seq,
            err,
        });
    }
    Ok(ReadEvent::Frame(Frame {
        ftype: header.ftype,
        flags: header.flags,
        seq: header.seq,
        payload,
    }))
}

/// One response frame to write back.
struct Response {
    ftype: FrameType,
    seq: u16,
    payload: Vec<u8>,
    /// Close the connection after writing.
    close: bool,
}

impl Response {
    fn ack(seq: u16) -> Response {
        Response {
            ftype: FrameType::Ack,
            seq,
            payload: Vec::new(),
            close: false,
        }
    }

    fn nack(seq: u16, code: NackCode, detail: &str, close: bool) -> Response {
        Response {
            ftype: FrameType::Nack,
            seq,
            payload: encode_nack_payload(code, detail),
            close,
        }
    }
}

/// Serves one connection until close/shutdown/fatal error.
fn handle_connection(mut stream: TcpStream, ctx: &Arc<ServerCtx>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(ctx.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        let event = match read_frame(&mut stream, ctx) {
            Ok(e) => e,
            Err(_) => return, // hard I/O error: nothing sane to send
        };
        let response = match event {
            ReadEvent::Closed => return,
            ReadEvent::TimedOut { seq } => {
                ctx.stats.read_timeouts.fetch_add(1, Ordering::Relaxed);
                Response::nack(
                    seq,
                    NackCode::Timeout,
                    "mid-frame read deadline blown",
                    true,
                )
            }
            ReadEvent::Bad { seq, err } => Response::nack(
                seq,
                err.nack_code(),
                &err.to_string(),
                err.closes_connection(),
            ),
            ReadEvent::Frame(frame) => {
                ctx.stats.frames_in.fetch_add(1, Ordering::Relaxed);
                dispatch_frame(frame, ctx)
            }
        };
        let close = response.close;
        if write_response(&mut stream, ctx, response).is_err() || close {
            return;
        }
    }
}

fn write_response(stream: &mut TcpStream, ctx: &ServerCtx, r: Response) -> io::Result<()> {
    if r.ftype == FrameType::Nack {
        ctx.stats.nacks.fetch_add(1, Ordering::Relaxed);
    }
    let bytes = encode_frame(r.ftype, r.seq, &r.payload);
    stream.write_all(&bytes)?;
    ctx.stats.frames_out.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// Routes one validated frame to its handler and produces the response.
fn dispatch_frame(frame: Frame, ctx: &Arc<ServerCtx>) -> Response {
    match frame.ftype {
        FrameType::Ping => Response {
            ftype: FrameType::Pong,
            seq: frame.seq,
            payload: Vec::new(),
            close: false,
        },
        FrameType::Ingest => handle_ingest(frame, ctx),
        FrameType::Merge => handle_merge(frame, ctx),
        FrameType::Query => handle_query(frame, ctx),
        FrameType::Shutdown => {
            ctx.ctl.drain_requested.store(true, Ordering::Release);
            ctx.ctl.draining.store(true, Ordering::Release);
            Response::ack(frame.seq)
        }
        // parse_header's direction check makes these unreachable, but
        // route them to a typed error rather than a panic if it ever
        // regresses.
        _ => Response::nack(
            frame.seq,
            NackCode::Malformed,
            "server-side frame type",
            false,
        ),
    }
}

/// Resolves a v2 stream prefix against the registry. `create` is true
/// for ingest/merge (create-on-first-use) and false for queries
/// ([`NackCode::UnknownStream`] instead).
fn resolve_stream(
    ctx: &Arc<ServerCtx>,
    seq: u16,
    prefix: &StreamPrefix<'_>,
    create: bool,
) -> Result<Arc<StreamState>, Response> {
    let mismatch = |expected: SketchFamily| {
        Response::nack(
            seq,
            NackCode::FamilyMismatch,
            &format!(
                "stream was created as {}, frame declared {}",
                expected.name(),
                prefix.family.name()
            ),
            false,
        )
    };
    if create {
        let workers = ctx.cfg.stream_workers.max(1);
        match ctx.registry.get_or_create(prefix.key, prefix.family, || {
            spawn_stream(ctx, prefix.key, prefix.family, workers)
        }) {
            Ok((stream, _created)) => Ok(stream),
            Err(CreateError::FamilyMismatch { expected }) => Err(mismatch(expected)),
            Err(CreateError::AtCapacity) => Err(Response::nack(
                seq,
                NackCode::Overload,
                "stream registry at capacity; retire a stream first",
                false,
            )),
            Err(CreateError::Build(e)) => Err(Response::nack(seq, NackCode::Internal, &e, false)),
        }
    } else {
        match ctx.registry.get(prefix.key) {
            Some(stream) if stream.family == prefix.family => Ok(stream),
            Some(stream) => Err(mismatch(stream.family)),
            None => Err(Response::nack(
                seq,
                NackCode::UnknownStream,
                "no such stream (queries never create streams)",
                false,
            )),
        }
    }
}

fn handle_ingest(frame: Frame, ctx: &Arc<ServerCtx>) -> Response {
    if ctx.ctl.draining.load(Ordering::Acquire) {
        return Response::nack(frame.seq, NackCode::Draining, "server is draining", false);
    }
    let (stream, body) = if frame.flags & FLAG_STREAM != 0 {
        match split_stream_prefix(&frame.payload, false) {
            Ok((prefix, body)) => match resolve_stream(ctx, frame.seq, &prefix, true) {
                Ok(stream) => (stream, body),
                Err(nack) => return nack,
            },
            Err(e) => return Response::nack(frame.seq, NackCode::Malformed, &e.to_string(), false),
        }
    } else {
        match ctx.default_stream() {
            Some(stream) => (stream, frame.payload.as_slice()),
            None => {
                return Response::nack(
                    frame.seq,
                    NackCode::Internal,
                    "default stream missing",
                    false,
                )
            }
        }
    };
    if !body.len().is_multiple_of(8) {
        return Response::nack(
            frame.seq,
            NackCode::Malformed,
            "ingest payload must be a whole number of u64 items",
            false,
        );
    }
    let items: Vec<u64> = body
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    if items.is_empty() {
        return Response::ack(frame.seq);
    }
    ingest_into(&stream, items, ctx, frame.seq)
}

/// Routes one batch into `stream`'s workers: round-robin over live
/// workers with closed breakers; a full queue records a breaker failure
/// and tries the next. Failure NACKs are scoped to this stream — other
/// streams' workers and breakers are never consulted.
fn ingest_into(stream: &StreamState, items: Vec<u64>, ctx: &ServerCtx, seq: u16) -> Response {
    let n = stream.workers.len();
    let start = stream.next_worker.fetch_add(1, Ordering::Relaxed);
    let mut batch = items;
    let mut saw_full = false;
    let mut saw_open = false;
    for i in 0..n {
        let w = &stream.workers[(start + i) % n];
        if w.dead.load(Ordering::Acquire) {
            continue;
        }
        if !w.breaker.allow() {
            saw_open = true;
            continue;
        }
        match w.tx.try_send(batch) {
            Ok(()) => {
                ctx.stats.ingest_batches.fetch_add(1, Ordering::Relaxed);
                return Response::ack(seq);
            }
            Err(TrySendError::Full(b)) => {
                w.breaker.record_failure();
                saw_full = true;
                batch = b;
            }
            Err(TrySendError::Disconnected(b)) => {
                // Worker gone without marking dead (shouldn't happen,
                // but never wedge on it).
                w.dead.store(true, Ordering::Release);
                w.breaker.trip();
                batch = b;
            }
        }
    }
    ctx.stats.sheds.fetch_add(1, Ordering::Relaxed);
    if saw_full {
        Response::nack(
            seq,
            NackCode::Overload,
            "all ingest queues full; back off and retry",
            false,
        )
    } else if saw_open {
        Response::nack(
            seq,
            NackCode::BreakerOpen,
            "ingest breakers open; retry after cooldown",
            false,
        )
    } else {
        Response::nack(seq, NackCode::Internal, "no live ingest backend", false)
    }
}

/// Pre-screens an envelope with the capped peek (never size anything
/// from an unvalidated declared length), then fully validates with the
/// family's zero-copy view so only decodable images are stored.
fn validate_envelope(payload: &[u8], cap: u32) -> Result<SketchFamily, String> {
    let peeked = peek(payload, cap as u64).map_err(|e| e.to_string())?;
    match peeked.family {
        SketchFamily::Theta => ThetaWireView::parse(payload).map(|_| ()),
        SketchFamily::Hll => HllWireView::parse(payload).map(|_| ()),
        SketchFamily::Quantiles => LadderWireView::<u64>::parse(payload).map(|_| ()),
        SketchFamily::Frequency => MgWireView::<u64>::parse(payload).map(|_| ()),
    }
    .map_err(|e| e.to_string())?;
    Ok(peeked.family)
}

fn handle_merge(frame: Frame, ctx: &Arc<ServerCtx>) -> Response {
    if ctx.ctl.draining.load(Ordering::Acquire) {
        return Response::nack(frame.seq, NackCode::Draining, "server is draining", false);
    }
    if frame.flags & FLAG_STREAM != 0 {
        let replace = frame.flags & FLAG_REPLACE != 0;
        let (prefix, body) = match split_stream_prefix(&frame.payload, replace) {
            Ok(split) => split,
            Err(e) => return Response::nack(frame.seq, NackCode::Malformed, &e.to_string(), false),
        };
        // Create-on-first-merge: a replica push materialises the stream
        // on the receiving peer before any local ingest.
        let stream = match resolve_stream(ctx, frame.seq, &prefix, true) {
            Ok(stream) => stream,
            Err(nack) => return nack,
        };
        let family = match validate_envelope(body, ctx.cfg.max_frame_payload) {
            Ok(f) => f,
            Err(e) => return Response::nack(frame.seq, NackCode::Wire, &e, false),
        };
        if family != stream.family {
            return Response::nack(
                frame.seq,
                NackCode::FamilyMismatch,
                &format!(
                    "envelope is {}, stream is {}",
                    family.name(),
                    stream.family.name()
                ),
                false,
            );
        }
        let image = Bytes::from(body.to_vec());
        if let Some(source) = prefix.source {
            // Replace-by-source: idempotent under periodic re-push.
            let mut replicas = stream.replicas.lock().unwrap_or_else(|e| e.into_inner());
            if !replicas.contains_key(&source) && replicas.len() >= ctx.cfg.merge_store_cap {
                return Response::nack(
                    frame.seq,
                    NackCode::Overload,
                    "replica slots at capacity for this stream",
                    false,
                );
            }
            replicas.insert(source, image);
        } else {
            let mut pushed = stream.pushed.lock().unwrap_or_else(|e| e.into_inner());
            if pushed.len() >= ctx.cfg.merge_store_cap {
                return Response::nack(
                    frame.seq,
                    NackCode::Overload,
                    "merge store at capacity for this stream",
                    false,
                );
            }
            pushed.push(image);
        }
        ctx.stats.merges_accepted.fetch_add(1, Ordering::Relaxed);
        return Response::ack(frame.seq);
    }
    // v1: the global per-family merge store.
    let family = match validate_envelope(&frame.payload, ctx.cfg.max_frame_payload) {
        Ok(f) => f,
        Err(e) => return Response::nack(frame.seq, NackCode::Wire, &e, false),
    };
    match ctx.store.push(family, Bytes::from(frame.payload)) {
        Ok(()) => {
            ctx.stats.merges_accepted.fetch_add(1, Ordering::Relaxed);
            Response::ack(frame.seq)
        }
        Err(()) => Response::nack(
            frame.seq,
            NackCode::Overload,
            "merge store at capacity for this family",
            false,
        ),
    }
}

/// Serves a v2 per-stream query: fans the stream's live image, replica
/// slots and pushed images together with the family's multiway kernel.
fn stream_query(seq: u16, stream: &StreamState, kind: u8) -> Response {
    let images = stream.images();
    let wire_err =
        |e: fcds_sketches::WireError| Response::nack(seq, NackCode::Wire, &e.to_string(), false);
    let estimate = |value: f64| Response {
        ftype: FrameType::Estimate,
        seq,
        payload: value.to_bits().to_le_bytes().to_vec(),
        close: false,
    };
    let image = |bytes: Bytes| Response {
        ftype: FrameType::Image,
        seq,
        payload: bytes.as_ref().to_vec(),
        close: false,
    };
    match (kind, stream.family) {
        (0, SketchFamily::Theta) => match theta_multiway_union(&images) {
            Ok(s) => estimate(s.estimate()),
            Err(e) => wire_err(e),
        },
        (0, SketchFamily::Hll) => match hll_multiway_merge(&images) {
            Ok(s) => estimate(s.estimate()),
            Err(e) => wire_err(e),
        },
        (0, _) => Response::nack(
            seq,
            NackCode::Unsupported,
            "quantiles/frequency families have no scalar estimate; query the image",
            false,
        ),
        (1, SketchFamily::Theta) => match theta_multiway_union(&images) {
            Ok(s) => image(s.to_wire_bytes()),
            Err(e) => wire_err(e),
        },
        (1, SketchFamily::Hll) => match hll_multiway_merge(&images) {
            Ok(s) => image(s.to_wire_bytes()),
            Err(e) => wire_err(e),
        },
        (1, SketchFamily::Quantiles) => match ladder_multiway_concat::<u64, _>(&images) {
            Ok(s) => image(s.to_wire_bytes()),
            Err(e) => wire_err(e),
        },
        (1, SketchFamily::Frequency) => match mg_multiway_merge::<u64, _>(&images) {
            Ok(s) => image(s.to_wire_bytes()),
            Err(e) => wire_err(e),
        },
        _ => Response::nack(seq, NackCode::Malformed, "unknown query kind", false),
    }
}

fn handle_query(frame: Frame, ctx: &Arc<ServerCtx>) -> Response {
    if frame.flags & FLAG_STREAM != 0 {
        let (prefix, body) = match split_stream_prefix(&frame.payload, false) {
            Ok(split) => split,
            Err(e) => return Response::nack(frame.seq, NackCode::Malformed, &e.to_string(), false),
        };
        let stream = match resolve_stream(ctx, frame.seq, &prefix, false) {
            Ok(stream) => stream,
            Err(nack) => return nack,
        };
        // Same 2-byte selector as v1; the family byte is redundant with
        // the prefix and ignored.
        let kind = match body {
            [k, _family] => *k,
            _ => {
                return Response::nack(
                    frame.seq,
                    NackCode::Malformed,
                    "query payload must be [kind, family]",
                    false,
                )
            }
        };
        return stream_query(frame.seq, &stream, kind);
    }
    let [kind, family] = match frame.payload.as_slice() {
        [k, f] => [*k, *f],
        _ => {
            return Response::nack(
                frame.seq,
                NackCode::Malformed,
                "query payload must be [kind, family]",
                false,
            )
        }
    };
    let wire_err = |e: fcds_sketches::WireError| {
        Response::nack(frame.seq, NackCode::Wire, &e.to_string(), false)
    };
    match (kind, family) {
        // Estimates.
        (0, 0) => {
            let value = ctx
                .default_stream()
                .and_then(|s| s.engine.estimate())
                .unwrap_or(0.0);
            Response {
                ftype: FrameType::Estimate,
                seq: frame.seq,
                payload: value.to_bits().to_le_bytes().to_vec(),
                close: false,
            }
        }
        (0, 1) => match theta_multiway_union(&ctx.store.images(SketchFamily::Theta)) {
            Ok(s) => Response {
                ftype: FrameType::Estimate,
                seq: frame.seq,
                payload: s.estimate().to_bits().to_le_bytes().to_vec(),
                close: false,
            },
            Err(e) => wire_err(e),
        },
        (0, 2) => match hll_multiway_merge(&ctx.store.images(SketchFamily::Hll)) {
            Ok(s) => Response {
                ftype: FrameType::Estimate,
                seq: frame.seq,
                payload: s.estimate().to_bits().to_le_bytes().to_vec(),
                close: false,
            },
            Err(e) => wire_err(e),
        },
        (0, 3 | 4) => Response::nack(
            frame.seq,
            NackCode::Unsupported,
            "quantiles/frequency families have no scalar estimate; query the image",
            false,
        ),
        // Images.
        (1, 0) => match ctx.default_stream() {
            Some(s) => Response {
                ftype: FrameType::Image,
                seq: frame.seq,
                payload: s.engine.wire_image().as_ref().to_vec(),
                close: false,
            },
            None => Response::nack(
                frame.seq,
                NackCode::Internal,
                "default stream missing",
                false,
            ),
        },
        (1, 1) => match theta_multiway_union(&ctx.store.images(SketchFamily::Theta)) {
            Ok(s) => Response {
                ftype: FrameType::Image,
                seq: frame.seq,
                payload: s.to_wire_bytes().as_ref().to_vec(),
                close: false,
            },
            Err(e) => wire_err(e),
        },
        (1, 2) => match hll_multiway_merge(&ctx.store.images(SketchFamily::Hll)) {
            Ok(s) => Response {
                ftype: FrameType::Image,
                seq: frame.seq,
                payload: s.to_wire_bytes().as_ref().to_vec(),
                close: false,
            },
            Err(e) => wire_err(e),
        },
        (1, 3) => {
            match ladder_multiway_concat::<u64, _>(&ctx.store.images(SketchFamily::Quantiles)) {
                Ok(s) => Response {
                    ftype: FrameType::Image,
                    seq: frame.seq,
                    payload: s.to_wire_bytes().as_ref().to_vec(),
                    close: false,
                },
                Err(e) => wire_err(e),
            }
        }
        (1, 4) => match mg_multiway_merge::<u64, _>(&ctx.store.images(SketchFamily::Frequency)) {
            Ok(s) => Response {
                ftype: FrameType::Image,
                seq: frame.seq,
                payload: s.to_wire_bytes().as_ref().to_vec(),
                close: false,
            },
            Err(e) => wire_err(e),
        },
        _ => Response::nack(
            frame.seq,
            NackCode::Malformed,
            "unknown query kind or family",
            false,
        ),
    }
}
