//! `fcds-server`: a fault-tolerant network tier in front of the
//! concurrent sketch engine.
//!
//! Thread-per-connection over `std::net` (no async runtime — the build
//! environment is offline and the engine's hot path is synchronous
//! anyway), speaking the length-prefixed [`frame`] protocol whose
//! payloads are the sketch wire envelopes plus a raw batch-ingest
//! frame. Robustness is the design center:
//!
//! * **Deadlines** — every connection has a mid-frame read deadline and
//!   a write timeout, so a stalled or severed peer can hold a thread
//!   for at most one frame.
//! * **Backpressure** — ingest flows through bounded per-worker queues;
//!   a full queue sheds the batch with an explicit
//!   [`frame::NackCode::Overload`] NACK, never a silent drop.
//! * **Circuit breaking** — each ingest worker is guarded by a
//!   closed/open/half-open [`breaker::CircuitBreaker`]; a worker that
//!   keeps failing is taken out of rotation and probed after a
//!   cooldown.
//! * **Panic isolation** — connection threads and ingest workers run
//!   under `catch_unwind`; a poisoned request can kill at most the
//!   thread it is on, and a dead worker trips its breaker instead of
//!   wedging the engine. A dead *propagator* (the engine-level fault)
//!   surfaces as `FlushError` from the worker's writer and is handled
//!   the same way.
//! * **Graceful drain** — [`ServerHandle::shutdown`] stops admitting
//!   ingest, drains the queues, flushes every writer, quiesces the
//!   engine (republishing images), then closes the listener and joins
//!   every thread, returning a [`DrainReport`].

pub mod breaker;
pub mod client;
pub mod frame;

pub use breaker::{BreakerState, CircuitBreaker};
pub use client::{Client, Reply};
pub use frame::{FrameType, NackCode};

use crate::frame::{
    check_payload, encode_frame, encode_nack_payload, parse_header, Frame, HeaderError,
    FRAME_HEADER_LEN,
};
use bytes::Bytes;
use fcds_core::theta::{ConcurrentThetaBuilder, ConcurrentThetaSketch};
use fcds_core::PropagationBackendKind;
use fcds_sketches::theta::ThetaRead;
use fcds_sketches::wire::{
    hll_multiway_merge, ladder_multiway_concat, mg_multiway_merge, peek, theta_multiway_union,
    HllWireView, LadderWireView, MgWireView, SketchFamily, ThetaWireView, WireEncode,
};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked socket reads and idle loops wake up to check the
/// shutdown/drain flags. Deadlines are enforced at this granularity.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server configuration. `Default` is sized for a small host (the 1-CPU
/// CI container): two ingest workers, 64-deep queues, 1 MiB frames.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks a free port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Number of ingest worker threads, each owning one engine writer.
    pub ingest_workers: usize,
    /// Bound of each worker's ingest queue, in batches. A full queue
    /// sheds with [`NackCode::Overload`].
    pub queue_depth: usize,
    /// Maximum accepted frame payload, bytes. Larger declarations are
    /// NACKed ([`NackCode::PayloadTooLarge`]) and the connection closed.
    pub max_frame_payload: u32,
    /// Mid-frame read deadline: once a frame's first byte arrives, the
    /// rest must arrive within this window or the connection is closed
    /// (with a best-effort [`NackCode::Timeout`] NACK).
    pub frame_deadline: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// `lg_k` of the live Θ engine.
    pub lg_k: u8,
    /// Propagation backend for the live engine.
    pub backend: PropagationBackendKind,
    /// Consecutive failures that open a worker's circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before admitting a half-open
    /// probe.
    pub breaker_cooldown: Duration,
    /// Maximum retained wire images per sketch family in the merge
    /// store; beyond it, merges shed with [`NackCode::Overload`].
    pub merge_store_cap: usize,
    /// Fault-injection hook for the robustness suite: an ingest worker
    /// that sees this item value panics, exercising panic isolation and
    /// the breaker over a real connection. `None` in production.
    pub fault_panic_on: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ingest_workers: 2,
            queue_depth: 64,
            max_frame_payload: 1 << 20,
            frame_deadline: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            lg_k: 12,
            backend: PropagationBackendKind::WriterAssisted,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
            merge_store_cap: 1024,
            fault_panic_on: None,
        }
    }
}

/// Monotone server counters (all `Relaxed` — diagnostics, not
/// synchronisation).
#[derive(Debug, Default)]
struct Stats {
    conns_opened: AtomicU64,
    conns_closed: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    nacks: AtomicU64,
    sheds: AtomicU64,
    ingest_batches: AtomicU64,
    ingest_items: AtomicU64,
    merges_accepted: AtomicU64,
    worker_panics: AtomicU64,
    conn_panics: AtomicU64,
    flush_errors: AtomicU64,
    read_timeouts: AtomicU64,
}

/// A point-in-time copy of the server's diagnostic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub conns_opened: u64,
    /// Connections that have finished (closed or errored).
    pub conns_closed: u64,
    /// Frames successfully decoded from clients.
    pub frames_in: u64,
    /// Frames written to clients.
    pub frames_out: u64,
    /// NACK frames sent (every rejected request produces exactly one).
    pub nacks: u64,
    /// Ingest batches shed on full queues.
    pub sheds: u64,
    /// Ingest batches accepted into worker queues.
    pub ingest_batches: u64,
    /// Stream items ingested into the live engine.
    pub ingest_items: u64,
    /// Wire images accepted into the merge store.
    pub merges_accepted: u64,
    /// Ingest-worker panics isolated (each kills one worker, trips its
    /// breaker, and takes nothing else down).
    pub worker_panics: u64,
    /// Connection-thread panics isolated.
    pub conn_panics: u64,
    /// Writer flushes that failed with a typed `FlushError`.
    pub flush_errors: u64,
    /// Connections closed for blowing the mid-frame read deadline.
    pub read_timeouts: u64,
}

impl Stats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            conns_opened: self.conns_opened.load(Ordering::Relaxed),
            conns_closed: self.conns_closed.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            nacks: self.nacks.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            ingest_batches: self.ingest_batches.load(Ordering::Relaxed),
            ingest_items: self.ingest_items.load(Ordering::Relaxed),
            merges_accepted: self.merges_accepted.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            conn_panics: self.conn_panics.load(Ordering::Relaxed),
            flush_errors: self.flush_errors.load(Ordering::Relaxed),
            read_timeouts: self.read_timeouts.load(Ordering::Relaxed),
        }
    }
}

/// Bounded per-family store of merged-in wire images, validated on
/// arrival (capped `peek` + full zero-copy view parse) and fanned in at
/// query time with the multiway kernels.
struct MergeStore {
    families: [Mutex<Vec<Bytes>>; 4],
    cap: usize,
}

impl MergeStore {
    fn new(cap: usize) -> Self {
        MergeStore {
            families: [
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
            ],
            cap,
        }
    }

    fn slot(&self, family: SketchFamily) -> &Mutex<Vec<Bytes>> {
        &self.families[(family.code() - 1) as usize]
    }

    /// Appends an already-validated image; `Err` when the family's
    /// store is at capacity (the caller sheds).
    fn push(&self, family: SketchFamily, image: Bytes) -> Result<(), ()> {
        let mut v = self.slot(family).lock().unwrap_or_else(|e| e.into_inner());
        if v.len() >= self.cap {
            return Err(());
        }
        v.push(image);
        Ok(())
    }

    fn images(&self, family: SketchFamily) -> Vec<Bytes> {
        self.slot(family)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Run-state flags shared by every thread of the server.
#[derive(Debug, Default)]
struct Control {
    /// Stop admitting ingest/merge work (queries still served).
    draining: AtomicBool,
    /// Tear everything down: listener, connections, workers.
    shutdown: AtomicBool,
    /// A client sent a `Shutdown` frame; the embedder (e.g. the binary)
    /// polls this and calls [`ServerHandle::shutdown`].
    drain_requested: AtomicBool,
}

/// Per-worker dispatch handle, cloned into every connection thread.
#[derive(Clone)]
struct WorkerHandle {
    tx: SyncSender<Vec<u64>>,
    breaker: Arc<CircuitBreaker>,
    dead: Arc<AtomicBool>,
}

/// Everything a connection thread needs.
struct ServerCtx {
    cfg: ServerConfig,
    ctl: Control,
    stats: Stats,
    engine: ConcurrentThetaSketch,
    store: MergeStore,
    workers: Vec<WorkerHandle>,
    next_worker: AtomicUsize,
}

/// The running server: owns the accept loop, worker threads, and the
/// live engine. Obtain via [`serve`]; stop via [`Self::shutdown`] (or
/// drop, which performs an abrupt but still joined teardown).
pub struct ServerHandle {
    ctx: Arc<ServerCtx>,
    addr: SocketAddr,
    accept_join: Option<JoinHandle<()>>,
    worker_joins: Vec<JoinHandle<WorkerExit>>,
    conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>>,
    drained: bool,
}

/// What a worker reports when it exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerExit {
    /// Queue drained and writer flushed cleanly.
    Flushed,
    /// Writer flush failed (typed engine error, already counted).
    FlushFailed,
    /// The worker panicked (isolated; breaker tripped).
    Panicked,
}

/// Outcome of a graceful drain: how cleanly the server went down.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct DrainReport {
    /// Workers whose queues drained and writers flushed cleanly.
    pub workers_flushed: usize,
    /// Workers whose final flush failed with a typed error.
    pub workers_flush_failed: usize,
    /// Workers that had died by panic before or during the drain.
    pub workers_panicked: usize,
    /// Threads that could not be joined (must be 0 — anything else is a
    /// leak).
    pub leaked_threads: usize,
    /// Final counter snapshot.
    pub stats: StatsSnapshot,
    /// Final estimate of the live engine after quiesce.
    pub final_estimate: f64,
}

/// Starts the server: binds the listener, spins up the engine and the
/// ingest workers, and begins accepting connections.
///
/// # Errors
///
/// Propagates listener bind errors; panics only on invalid engine
/// configuration (caller-controlled).
pub fn serve(cfg: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let workers_n = cfg.ingest_workers.max(1);
    let engine = ConcurrentThetaBuilder::new()
        .lg_k(cfg.lg_k)
        .writers(workers_n)
        .backend(cfg.backend)
        .build()
        .expect("server engine config must be valid");

    let mut worker_handles = Vec::with_capacity(workers_n);
    let mut worker_rx: Vec<Receiver<Vec<u64>>> = Vec::with_capacity(workers_n);
    for _ in 0..workers_n {
        let (tx, rx) = sync_channel::<Vec<u64>>(cfg.queue_depth.max(1));
        worker_handles.push(WorkerHandle {
            tx,
            breaker: Arc::new(CircuitBreaker::new(
                cfg.breaker_threshold.max(1),
                cfg.breaker_cooldown,
            )),
            dead: Arc::new(AtomicBool::new(false)),
        });
        worker_rx.push(rx);
    }

    let store = MergeStore::new(cfg.merge_store_cap);
    let ctx = Arc::new(ServerCtx {
        cfg,
        ctl: Control::default(),
        stats: Stats::default(),
        engine,
        store,
        workers: worker_handles,
        next_worker: AtomicUsize::new(0),
    });

    let mut worker_joins = Vec::with_capacity(workers_n);
    for (i, rx) in worker_rx.into_iter().enumerate() {
        let ctx = Arc::clone(&ctx);
        let writer = ctx.engine.writer();
        worker_joins.push(
            std::thread::Builder::new()
                .name(format!("fcds-ingest-{i}"))
                .spawn(move || ingest_worker(ctx, i, writer, rx))
                .expect("spawn ingest worker"),
        );
    }

    let conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept_join = {
        let ctx = Arc::clone(&ctx);
        let conn_joins = Arc::clone(&conn_joins);
        std::thread::Builder::new()
            .name("fcds-accept".to_string())
            .spawn(move || accept_loop(listener, ctx, conn_joins))
            .expect("spawn accept loop")
    };

    Ok(ServerHandle {
        ctx,
        addr,
        accept_join: Some(accept_join),
        worker_joins,
        conn_joins,
        drained: false,
    })
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.ctx.stats.snapshot()
    }

    /// Whether the live engine lost a propagation service (a dead
    /// propagator thread) — degraded but still serving.
    pub fn is_degraded(&self) -> bool {
        self.ctx
            .workers
            .iter()
            .any(|w| w.dead.load(Ordering::Acquire))
    }

    /// Whether some client requested a drain with a `Shutdown` frame.
    pub fn drain_requested(&self) -> bool {
        self.ctx.ctl.drain_requested.load(Ordering::Acquire)
    }

    /// Estimate of the live engine (concurrent query path).
    pub fn live_estimate(&self) -> f64 {
        self.ctx.engine.estimate()
    }

    /// Gracefully drains and stops the server:
    ///
    /// 1. stop admitting ingest/merge (`Draining` NACKs from here on);
    /// 2. let workers drain their queues and flush their writers;
    /// 3. quiesce the engine (merges every hand-off, republishes
    ///    images);
    /// 4. close the listener and every connection, joining all threads.
    pub fn shutdown(mut self) -> DrainReport {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> DrainReport {
        self.drained = true;
        self.ctx.ctl.draining.store(true, Ordering::Release);

        let mut workers_flushed = 0usize;
        let mut workers_flush_failed = 0usize;
        let mut workers_panicked = 0usize;
        let mut leaked_threads = 0usize;
        for j in self.worker_joins.drain(..) {
            match j.join() {
                Ok(WorkerExit::Flushed) => workers_flushed += 1,
                Ok(WorkerExit::FlushFailed) => workers_flush_failed += 1,
                Ok(WorkerExit::Panicked) => workers_panicked += 1,
                Err(_) => leaked_threads += 1, // catch_unwind means this can't happen
            }
        }

        // Writers are flushed (or dead); merge what is in flight and
        // republish every shard image.
        self.ctx.engine.quiesce();

        self.ctx.ctl.shutdown.store(true, Ordering::Release);
        if let Some(j) = self.accept_join.take() {
            if j.join().is_err() {
                leaked_threads += 1;
            }
        }
        let joins = {
            let mut g = self.conn_joins.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *g)
        };
        for j in joins {
            if j.join().is_err() {
                leaked_threads += 1;
            }
        }

        DrainReport {
            workers_flushed,
            workers_flush_failed,
            workers_panicked,
            leaked_threads,
            stats: self.ctx.stats.snapshot(),
            final_estimate: self.ctx.engine.estimate(),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.drained {
            let _ = self.shutdown_inner();
        }
    }
}

/// The ingest worker: drains its bounded queue into its engine writer.
/// Runs under `catch_unwind`; a panic (injected faults, engine bugs)
/// kills only this worker, trips its breaker, and marks it dead so
/// dispatch routes around it.
fn ingest_worker(
    ctx: Arc<ServerCtx>,
    index: usize,
    writer: fcds_core::theta::ThetaWriter,
    rx: Receiver<Vec<u64>>,
) -> WorkerExit {
    let me = ctx.workers[index].clone();
    let exit = catch_unwind(AssertUnwindSafe(|| {
        ingest_worker_impl(&ctx, &me, writer, &rx)
    }));
    match exit {
        Ok(e) => e,
        Err(_) => {
            me.dead.store(true, Ordering::Release);
            me.breaker.trip();
            ctx.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            WorkerExit::Panicked
        }
    }
}

fn ingest_worker_impl(
    ctx: &ServerCtx,
    me: &WorkerHandle,
    mut writer: fcds_core::theta::ThetaWriter,
    rx: &Receiver<Vec<u64>>,
) -> WorkerExit {
    loop {
        match rx.recv_timeout(POLL_INTERVAL) {
            Ok(batch) => {
                if let Some(poison) = ctx.cfg.fault_panic_on {
                    if batch.contains(&poison) {
                        panic!("injected fault: poisoned ingest item {poison}");
                    }
                }
                let n = batch.len() as u64;
                writer.update_batch(&batch);
                // Surface engine-side propagation faults (a dead
                // propagator thread) promptly instead of only at drain:
                // flush after each batch. With the writer-assisted
                // backend this is propagation the writer performs
                // anyway; with the dedicated-thread backend it bounds
                // the un-acked window to one batch.
                match writer.flush() {
                    Ok(()) => {
                        ctx.stats.ingest_items.fetch_add(n, Ordering::Relaxed);
                        me.breaker.record_success();
                    }
                    Err(_e) => {
                        ctx.stats.flush_errors.fetch_add(1, Ordering::Relaxed);
                        me.dead.store(true, Ordering::Release);
                        me.breaker.trip();
                        return WorkerExit::FlushFailed;
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if ctx.ctl.draining.load(Ordering::Acquire)
                    || ctx.ctl.shutdown.load(Ordering::Acquire)
                {
                    // Dispatch stopped admitting before the flag was
                    // set, so an empty poll during a drain means the
                    // queue is finally dry: flush and exit.
                    return match writer.flush() {
                        Ok(()) => WorkerExit::Flushed,
                        Err(_) => {
                            ctx.stats.flush_errors.fetch_add(1, Ordering::Relaxed);
                            me.dead.store(true, Ordering::Release);
                            me.breaker.trip();
                            WorkerExit::FlushFailed
                        }
                    };
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                // All senders gone (server handle dropped mid-teardown).
                return match writer.flush() {
                    Ok(()) => WorkerExit::Flushed,
                    Err(_) => WorkerExit::FlushFailed,
                };
            }
        }
    }
}

/// Accepts connections until shutdown; each connection gets its own
/// thread wrapped in `catch_unwind`.
fn accept_loop(
    listener: TcpListener,
    ctx: Arc<ServerCtx>,
    conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut conn_id = 0u64;
    loop {
        if ctx.ctl.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                conn_id += 1;
                ctx.stats.conns_opened.fetch_add(1, Ordering::Relaxed);
                let ctx2 = Arc::clone(&ctx);
                let handle = std::thread::Builder::new()
                    .name(format!("fcds-conn-{conn_id}"))
                    .spawn(move || {
                        let ctx3 = Arc::clone(&ctx2);
                        let r = catch_unwind(AssertUnwindSafe(move || {
                            handle_connection(stream, &ctx2);
                        }));
                        if r.is_err() {
                            ctx3.stats.conn_panics.fetch_add(1, Ordering::Relaxed);
                        }
                        ctx3.stats.conns_closed.fetch_add(1, Ordering::Relaxed);
                    })
                    .expect("spawn connection thread");
                let mut joins = conn_joins.lock().unwrap_or_else(|e| e.into_inner());
                // Reap finished threads so the vec stays bounded by the
                // number of *live* connections.
                joins.retain(|j| !j.is_finished());
                joins.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => {
                // Transient accept errors (aborted handshakes) — retry.
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }
}

/// What the frame reader produced.
enum ReadEvent {
    /// A validated frame.
    Frame(Frame),
    /// A protocol violation; NACK with `err`'s code and close if
    /// `err.closes_connection()`.
    Bad { seq: u16, err: HeaderError },
    /// The peer closed (or the server is shutting down) — exit quietly.
    Closed,
    /// Mid-frame deadline blown: best-effort Timeout NACK, then close.
    TimedOut { seq: u16 },
}

/// Reads exactly `buf.len()` bytes, polling the shutdown flag and
/// enforcing `deadline` (set by the caller once a frame has started).
fn read_exact_ctl(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: &mut Option<Instant>,
    ctx: &ServerCtx,
) -> io::Result<ReadProgress> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Ok(ReadProgress::Closed),
            Ok(n) => {
                filled += n;
                if deadline.is_none() {
                    *deadline = Some(Instant::now() + ctx.cfg.frame_deadline);
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if ctx.ctl.shutdown.load(Ordering::Acquire) {
                    return Ok(ReadProgress::Closed);
                }
                if let Some(d) = *deadline {
                    if Instant::now() >= d {
                        return Ok(ReadProgress::TimedOut);
                    }
                }
                if filled == 0 {
                    // Idle between frames: not an error, keep polling.
                    return Ok(ReadProgress::Idle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadProgress::Done)
}

enum ReadProgress {
    Done,
    Idle,
    Closed,
    TimedOut,
}

/// Reads one frame (or classifies why one could not be read).
fn read_frame(stream: &mut TcpStream, ctx: &ServerCtx) -> io::Result<ReadEvent> {
    let mut header_bytes = [0u8; FRAME_HEADER_LEN];
    let mut deadline: Option<Instant> = None;
    // Header: loop on Idle (no frame started yet).
    loop {
        match read_exact_ctl(stream, &mut header_bytes, &mut deadline, ctx)? {
            ReadProgress::Done => break,
            ReadProgress::Idle => continue,
            ReadProgress::Closed => return Ok(ReadEvent::Closed),
            ReadProgress::TimedOut => return Ok(ReadEvent::TimedOut { seq: 0 }),
        }
    }
    // Sequence number for NACKs even when validation fails (only
    // meaningful if the magic matched; 0 otherwise).
    let raw_seq = u16::from_le_bytes(header_bytes[6..8].try_into().expect("2 bytes"));
    let header = match parse_header(&header_bytes, ctx.cfg.max_frame_payload, true) {
        Ok(h) => h,
        Err(err) => {
            let seq = if matches!(err, HeaderError::BadMagic { .. }) {
                0
            } else {
                raw_seq
            };
            // For keep-open violations (unknown type, bad flags) the
            // framing is intact: skim the declared payload so the next
            // frame starts at a boundary. The declared length is still
            // capped before we trust it.
            if !err.closes_connection() {
                let declared = u32::from_le_bytes(header_bytes[8..12].try_into().expect("4 bytes"));
                if declared > ctx.cfg.max_frame_payload {
                    return Ok(ReadEvent::Bad {
                        seq,
                        err: HeaderError::PayloadTooLarge {
                            declared,
                            cap: ctx.cfg.max_frame_payload,
                        },
                    });
                }
                let mut discard = vec![0u8; declared as usize];
                loop {
                    match read_exact_ctl(stream, &mut discard, &mut deadline, ctx)? {
                        ReadProgress::Done => break,
                        ReadProgress::Idle => continue,
                        ReadProgress::Closed => return Ok(ReadEvent::Closed),
                        ReadProgress::TimedOut => return Ok(ReadEvent::TimedOut { seq }),
                    }
                }
            }
            return Ok(ReadEvent::Bad { seq, err });
        }
    };
    let mut payload = vec![0u8; header.payload_len as usize];
    loop {
        match read_exact_ctl(stream, &mut payload, &mut deadline, ctx)? {
            ReadProgress::Done => break,
            ReadProgress::Idle => continue,
            ReadProgress::Closed => return Ok(ReadEvent::Closed),
            ReadProgress::TimedOut => return Ok(ReadEvent::TimedOut { seq: header.seq }),
        }
    }
    if let Err(err) = check_payload(&header, &payload) {
        return Ok(ReadEvent::Bad {
            seq: header.seq,
            err,
        });
    }
    Ok(ReadEvent::Frame(Frame {
        ftype: header.ftype,
        seq: header.seq,
        payload,
    }))
}

/// One response frame to write back.
struct Response {
    ftype: FrameType,
    seq: u16,
    payload: Vec<u8>,
    /// Close the connection after writing.
    close: bool,
}

impl Response {
    fn ack(seq: u16) -> Response {
        Response {
            ftype: FrameType::Ack,
            seq,
            payload: Vec::new(),
            close: false,
        }
    }

    fn nack(seq: u16, code: NackCode, detail: &str, close: bool) -> Response {
        Response {
            ftype: FrameType::Nack,
            seq,
            payload: encode_nack_payload(code, detail),
            close,
        }
    }
}

/// Serves one connection until close/shutdown/fatal error.
fn handle_connection(mut stream: TcpStream, ctx: &ServerCtx) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(ctx.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        let event = match read_frame(&mut stream, ctx) {
            Ok(e) => e,
            Err(_) => return, // hard I/O error: nothing sane to send
        };
        let response = match event {
            ReadEvent::Closed => return,
            ReadEvent::TimedOut { seq } => {
                ctx.stats.read_timeouts.fetch_add(1, Ordering::Relaxed);
                Response::nack(
                    seq,
                    NackCode::Timeout,
                    "mid-frame read deadline blown",
                    true,
                )
            }
            ReadEvent::Bad { seq, err } => Response::nack(
                seq,
                err.nack_code(),
                &err.to_string(),
                err.closes_connection(),
            ),
            ReadEvent::Frame(frame) => {
                ctx.stats.frames_in.fetch_add(1, Ordering::Relaxed);
                dispatch_frame(frame, ctx)
            }
        };
        let close = response.close;
        if write_response(&mut stream, ctx, response).is_err() || close {
            return;
        }
    }
}

fn write_response(stream: &mut TcpStream, ctx: &ServerCtx, r: Response) -> io::Result<()> {
    if r.ftype == FrameType::Nack {
        ctx.stats.nacks.fetch_add(1, Ordering::Relaxed);
    }
    let bytes = encode_frame(r.ftype, r.seq, &r.payload);
    stream.write_all(&bytes)?;
    ctx.stats.frames_out.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// Routes one validated frame to its handler and produces the response.
fn dispatch_frame(frame: Frame, ctx: &ServerCtx) -> Response {
    match frame.ftype {
        FrameType::Ping => Response {
            ftype: FrameType::Pong,
            seq: frame.seq,
            payload: Vec::new(),
            close: false,
        },
        FrameType::Ingest => handle_ingest(frame, ctx),
        FrameType::Merge => handle_merge(frame, ctx),
        FrameType::Query => handle_query(frame, ctx),
        FrameType::Shutdown => {
            ctx.ctl.drain_requested.store(true, Ordering::Release);
            ctx.ctl.draining.store(true, Ordering::Release);
            Response::ack(frame.seq)
        }
        // parse_header's direction check makes these unreachable, but
        // route them to a typed error rather than a panic if it ever
        // regresses.
        _ => Response::nack(
            frame.seq,
            NackCode::Malformed,
            "server-side frame type",
            false,
        ),
    }
}

fn handle_ingest(frame: Frame, ctx: &ServerCtx) -> Response {
    if ctx.ctl.draining.load(Ordering::Acquire) {
        return Response::nack(frame.seq, NackCode::Draining, "server is draining", false);
    }
    if !frame.payload.len().is_multiple_of(8) {
        return Response::nack(
            frame.seq,
            NackCode::Malformed,
            "ingest payload must be a whole number of u64 items",
            false,
        );
    }
    let items: Vec<u64> = frame
        .payload
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    if items.is_empty() {
        return Response::ack(frame.seq);
    }
    let n = ctx.workers.len();
    let start = ctx.next_worker.fetch_add(1, Ordering::Relaxed);
    let mut batch = items;
    let mut saw_full = false;
    let mut saw_open = false;
    for i in 0..n {
        let w = &ctx.workers[(start + i) % n];
        if w.dead.load(Ordering::Acquire) {
            continue;
        }
        if !w.breaker.allow() {
            saw_open = true;
            continue;
        }
        match w.tx.try_send(batch) {
            Ok(()) => {
                ctx.stats.ingest_batches.fetch_add(1, Ordering::Relaxed);
                return Response::ack(frame.seq);
            }
            Err(TrySendError::Full(b)) => {
                w.breaker.record_failure();
                saw_full = true;
                batch = b;
            }
            Err(TrySendError::Disconnected(b)) => {
                // Worker gone without marking dead (shouldn't happen,
                // but never wedge on it).
                w.dead.store(true, Ordering::Release);
                w.breaker.trip();
                batch = b;
            }
        }
    }
    ctx.stats.sheds.fetch_add(1, Ordering::Relaxed);
    if saw_full {
        Response::nack(
            frame.seq,
            NackCode::Overload,
            "all ingest queues full; back off and retry",
            false,
        )
    } else if saw_open {
        Response::nack(
            frame.seq,
            NackCode::BreakerOpen,
            "ingest breakers open; retry after cooldown",
            false,
        )
    } else {
        Response::nack(
            frame.seq,
            NackCode::Internal,
            "no live ingest backend",
            false,
        )
    }
}

fn handle_merge(frame: Frame, ctx: &ServerCtx) -> Response {
    if ctx.ctl.draining.load(Ordering::Acquire) {
        return Response::nack(frame.seq, NackCode::Draining, "server is draining", false);
    }
    // Pre-screen the envelope header with the capped peek (satellite of
    // this PR: never size anything from an unvalidated declared length),
    // then fully validate with the family's zero-copy view so only
    // decodable images enter the store.
    let peeked = match peek(&frame.payload, ctx.cfg.max_frame_payload as u64) {
        Ok(p) => p,
        Err(e) => return Response::nack(frame.seq, NackCode::Wire, &e.to_string(), false),
    };
    let validation = match peeked.family {
        SketchFamily::Theta => ThetaWireView::parse(&frame.payload).map(|_| ()),
        SketchFamily::Hll => HllWireView::parse(&frame.payload).map(|_| ()),
        SketchFamily::Quantiles => LadderWireView::<u64>::parse(&frame.payload).map(|_| ()),
        SketchFamily::Frequency => MgWireView::<u64>::parse(&frame.payload).map(|_| ()),
    };
    if let Err(e) = validation {
        return Response::nack(frame.seq, NackCode::Wire, &e.to_string(), false);
    }
    match ctx.store.push(peeked.family, Bytes::from(frame.payload)) {
        Ok(()) => {
            ctx.stats.merges_accepted.fetch_add(1, Ordering::Relaxed);
            Response::ack(frame.seq)
        }
        Err(()) => Response::nack(
            frame.seq,
            NackCode::Overload,
            "merge store at capacity for this family",
            false,
        ),
    }
}

fn handle_query(frame: Frame, ctx: &ServerCtx) -> Response {
    let [kind, family] = match frame.payload.as_slice() {
        [k, f] => [*k, *f],
        _ => {
            return Response::nack(
                frame.seq,
                NackCode::Malformed,
                "query payload must be [kind, family]",
                false,
            )
        }
    };
    let wire_err = |e: fcds_sketches::WireError| {
        Response::nack(frame.seq, NackCode::Wire, &e.to_string(), false)
    };
    match (kind, family) {
        // Estimates.
        (0, 0) => Response {
            ftype: FrameType::Estimate,
            seq: frame.seq,
            payload: ctx.engine.estimate().to_bits().to_le_bytes().to_vec(),
            close: false,
        },
        (0, 1) => match theta_multiway_union(&ctx.store.images(SketchFamily::Theta)) {
            Ok(s) => Response {
                ftype: FrameType::Estimate,
                seq: frame.seq,
                payload: s.estimate().to_bits().to_le_bytes().to_vec(),
                close: false,
            },
            Err(e) => wire_err(e),
        },
        (0, 2) => match hll_multiway_merge(&ctx.store.images(SketchFamily::Hll)) {
            Ok(s) => Response {
                ftype: FrameType::Estimate,
                seq: frame.seq,
                payload: s.estimate().to_bits().to_le_bytes().to_vec(),
                close: false,
            },
            Err(e) => wire_err(e),
        },
        (0, 3 | 4) => Response::nack(
            frame.seq,
            NackCode::Unsupported,
            "quantiles/frequency families have no scalar estimate; query the image",
            false,
        ),
        // Images.
        (1, 0) => Response {
            ftype: FrameType::Image,
            seq: frame.seq,
            payload: ctx.engine.wire_image().as_ref().to_vec(),
            close: false,
        },
        (1, 1) => match theta_multiway_union(&ctx.store.images(SketchFamily::Theta)) {
            Ok(s) => Response {
                ftype: FrameType::Image,
                seq: frame.seq,
                payload: s.to_wire_bytes().as_ref().to_vec(),
                close: false,
            },
            Err(e) => wire_err(e),
        },
        (1, 2) => match hll_multiway_merge(&ctx.store.images(SketchFamily::Hll)) {
            Ok(s) => Response {
                ftype: FrameType::Image,
                seq: frame.seq,
                payload: s.to_wire_bytes().as_ref().to_vec(),
                close: false,
            },
            Err(e) => wire_err(e),
        },
        (1, 3) => {
            match ladder_multiway_concat::<u64, _>(&ctx.store.images(SketchFamily::Quantiles)) {
                Ok(s) => Response {
                    ftype: FrameType::Image,
                    seq: frame.seq,
                    payload: s.to_wire_bytes().as_ref().to_vec(),
                    close: false,
                },
                Err(e) => wire_err(e),
            }
        }
        (1, 4) => match mg_multiway_merge::<u64, _>(&ctx.store.images(SketchFamily::Frequency)) {
            Ok(s) => Response {
                ftype: FrameType::Image,
                seq: frame.seq,
                payload: s.to_wire_bytes().as_ref().to_vec(),
                close: false,
            },
            Err(e) => wire_err(e),
        },
        _ => Response::nack(
            frame.seq,
            NackCode::Malformed,
            "unknown query kind or family",
            false,
        ),
    }
}
