//! `fcds-server`: a fault-tolerant network tier in front of the
//! concurrent sketch engine.
//!
//! Thread-per-connection over `std::net` (no async runtime — the build
//! environment is offline and the engine's hot path is synchronous
//! anyway), speaking the length-prefixed [`frame`] protocol whose
//! payloads are the sketch wire envelopes plus a raw batch-ingest
//! frame. Robustness is the design center:
//!
//! * **Deadlines** — every connection has a mid-frame read deadline and
//!   a write timeout, so a stalled or severed peer can hold a thread
//!   for at most one frame.
//! * **Backpressure** — ingest flows through bounded per-worker queues;
//!   a full queue sheds the batch with an explicit
//!   [`frame::NackCode::Overload`] NACK, never a silent drop.
//! * **Circuit breaking** — each ingest worker is guarded by a
//!   closed/open/half-open [`breaker::CircuitBreaker`]; a worker that
//!   keeps failing is taken out of rotation and probed after a
//!   cooldown.
//! * **Panic isolation** — connection threads and ingest workers run
//!   under `catch_unwind`; a poisoned request can kill at most the
//!   thread it is on, and a dead worker trips its breaker instead of
//!   wedging the engine. A dead *propagator* (the engine-level fault)
//!   surfaces as `FlushError` from the worker's writer and is handled
//!   the same way.
//! * **Graceful drain** — [`ServerHandle::shutdown`] stops admitting
//!   ingest, drains the queues, flushes every writer, quiesces every
//!   engine (republishing images), then closes the listener and joins
//!   every thread, returning a [`DrainReport`].
//!
//! # Multi-stream service (FCF1 v2)
//!
//! One server hosts many named streams, each a [`fcds_core::engine::
//! StreamEngine`] of any sketch family, looked up through the
//! [`registry`](StreamInfo) by the stream key carried on v2 frames
//! ([`frame::FLAG_STREAM`]). Streams are created on first ingest or
//! merge with the frame's declared family, are isolated from each other
//! (private workers, queues and breakers per stream), and can be
//! retired at runtime ([`ServerHandle::retire_stream`]). v1 frames
//! (flags 0) keep their exact pre-v2 semantics, routed to the built-in
//! [`DEFAULT_STREAM`] Θ stream.
//!
//! **Replica sync**: configure [`ServerConfig::replica_peer`] and the
//! server periodically encodes every stream's live wire image and ships
//! it to the peer as a v2 REPLACE merge ([`frame::FLAG_REPLACE`]) keyed
//! by [`ServerConfig::replica_source_id`]. The peer stores the newest
//! image per source and fans it in at query time with the multiway
//! merge kernels, so two servers ingesting disjoint substreams converge
//! on the union within one sync period. Replacement — not accumulation
//! — is what keeps periodic re-pushes idempotent for the families whose
//! merges are not (Quantiles concat, Misra–Gries counter addition).

pub mod breaker;
pub mod client;
pub mod frame;
pub mod persist;
pub mod recover;
mod registry;

pub use breaker::{BreakerState, CircuitBreaker};
pub use client::{Client, Reply};
pub use frame::{FrameType, NackCode};
pub use persist::{DirStore, FsyncPolicy, SnapshotStore};
pub use recover::{RecoverError, RecoveryOutcome, SnapshotRecord};
pub use registry::StreamInfo;

use crate::frame::{
    check_payload, encode_frame, encode_nack_payload, parse_header, split_stream_prefix, Frame,
    HeaderError, StreamPrefix, FLAG_REPLACE, FLAG_STREAM, FRAME_HEADER_LEN,
};
use crate::registry::{build_engine, CreateError, Registry, StreamState, WorkerExit, WorkerHandle};
use bytes::Bytes;
use fcds_core::engine::EngineWriter;
use fcds_core::PropagationBackendKind;
use fcds_sketches::theta::ThetaRead;
use fcds_sketches::wire::{
    hll_multiway_merge, ladder_multiway_concat, mg_multiway_merge, peek, theta_multiway_union,
    HllWireView, LadderWireView, MgWireView, SketchFamily, ThetaWireView, WireEncode,
};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked socket reads and idle loops wake up to check the
/// shutdown/drain flags. Deadlines are enforced at this granularity.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// The key of the built-in Θ stream every v1 frame is routed to. Always
/// present; cannot be retired.
pub const DEFAULT_STREAM: &[u8] = b"default";

/// Server configuration. `Default` is sized for a small host (the 1-CPU
/// CI container): two ingest workers, 64-deep queues, 1 MiB frames.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks a free port (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Number of ingest worker threads, each owning one engine writer.
    pub ingest_workers: usize,
    /// Bound of each worker's ingest queue, in batches. A full queue
    /// sheds with [`NackCode::Overload`].
    pub queue_depth: usize,
    /// Maximum accepted frame payload, bytes. Larger declarations are
    /// NACKed ([`NackCode::PayloadTooLarge`]) and the connection closed.
    pub max_frame_payload: u32,
    /// Mid-frame read deadline: once a frame's first byte arrives, the
    /// rest must arrive within this window or the connection is closed
    /// (with a best-effort [`NackCode::Timeout`] NACK).
    pub frame_deadline: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// `lg_k` of the live Θ engine.
    pub lg_k: u8,
    /// Propagation backend for the live engine.
    pub backend: PropagationBackendKind,
    /// Consecutive failures that open a worker's circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before admitting a half-open
    /// probe.
    pub breaker_cooldown: Duration,
    /// Maximum retained wire images per sketch family in the merge
    /// store; beyond it, merges shed with [`NackCode::Overload`].
    pub merge_store_cap: usize,
    /// Fault-injection hook for the robustness suite: an ingest worker
    /// that sees this item value panics, exercising panic isolation and
    /// the breaker over a real connection. `None` in production.
    pub fault_panic_on: Option<u64>,
    /// Ingest worker threads per *non-default* stream (the default
    /// stream uses [`Self::ingest_workers`]).
    pub stream_workers: usize,
    /// Maximum simultaneously registered streams (including the default
    /// stream); creation beyond it NACKs with [`NackCode::Overload`].
    pub max_streams: usize,
    /// Replica peer address (`host:port`). `Some` turns on the
    /// background pusher: every [`Self::replica_interval`] the server
    /// ships each stream's live wire image to the peer as a v2 REPLACE
    /// merge under [`Self::replica_source_id`].
    pub replica_peer: Option<String>,
    /// Push period of the replica pusher.
    pub replica_interval: Duration,
    /// This server's replica source id — the slot its pushes replace on
    /// the peer. Two peers pushing to each other must use distinct ids.
    pub replica_source_id: u64,
    /// Snapshot directory for the durability tier. `Some` turns on the
    /// background checkpointer (bounded loss ≤ one
    /// [`Self::snapshot_interval`] of acked ingest per stream) and
    /// boot-time recovery of every valid snapshot found there. `None`
    /// (the default) keeps the pre-PR-10 in-memory-only behaviour.
    pub data_dir: Option<String>,
    /// Checkpoint period of the durability tier — the bounded-loss
    /// window.
    pub snapshot_interval: Duration,
    /// When snapshot bytes are fsynced (see [`FsyncPolicy`]).
    pub fsync_policy: FsyncPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ingest_workers: 2,
            queue_depth: 64,
            max_frame_payload: 1 << 20,
            frame_deadline: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            lg_k: 12,
            backend: PropagationBackendKind::WriterAssisted,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
            merge_store_cap: 1024,
            fault_panic_on: None,
            stream_workers: 1,
            max_streams: 64,
            replica_peer: None,
            replica_interval: Duration::from_millis(250),
            replica_source_id: 1,
            data_dir: None,
            snapshot_interval: Duration::from_millis(250),
            fsync_policy: FsyncPolicy::Interval,
        }
    }
}

/// Monotone server counters (all `Relaxed` — diagnostics, not
/// synchronisation).
#[derive(Debug, Default)]
struct Stats {
    conns_opened: AtomicU64,
    conns_closed: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    nacks: AtomicU64,
    sheds: AtomicU64,
    ingest_batches: AtomicU64,
    ingest_items: AtomicU64,
    merges_accepted: AtomicU64,
    worker_panics: AtomicU64,
    conn_panics: AtomicU64,
    flush_errors: AtomicU64,
    read_timeouts: AtomicU64,
    streams_created: AtomicU64,
    streams_retired: AtomicU64,
    replica_pushes: AtomicU64,
    replica_push_errors: AtomicU64,
    snapshots_written: AtomicU64,
    snapshot_errors: AtomicU64,
    streams_recovered: AtomicU64,
    records_quarantined: AtomicU64,
}

/// A point-in-time copy of the server's diagnostic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub conns_opened: u64,
    /// Connections that have finished (closed or errored).
    pub conns_closed: u64,
    /// Frames successfully decoded from clients.
    pub frames_in: u64,
    /// Frames written to clients.
    pub frames_out: u64,
    /// NACK frames sent (every rejected request produces exactly one).
    pub nacks: u64,
    /// Ingest batches shed on full queues.
    pub sheds: u64,
    /// Ingest batches accepted into worker queues.
    pub ingest_batches: u64,
    /// Stream items ingested into the live engine.
    pub ingest_items: u64,
    /// Wire images accepted into the merge store.
    pub merges_accepted: u64,
    /// Ingest-worker panics isolated (each kills one worker, trips its
    /// breaker, and takes nothing else down).
    pub worker_panics: u64,
    /// Connection-thread panics isolated.
    pub conn_panics: u64,
    /// Writer flushes that failed with a typed `FlushError`.
    pub flush_errors: u64,
    /// Connections closed for blowing the mid-frame read deadline.
    pub read_timeouts: u64,
    /// Streams created (create-on-first-ingest/merge plus the default
    /// stream).
    pub streams_created: u64,
    /// Streams retired at runtime.
    pub streams_retired: u64,
    /// Replica images successfully pushed (acked by the peer).
    pub replica_pushes: u64,
    /// Replica pushes that failed (connect/write error or peer NACK).
    pub replica_push_errors: u64,
    /// Snapshot records committed by the checkpointer.
    pub snapshots_written: u64,
    /// Checkpointer write/merge/fsync failures (counted, never fatal).
    pub snapshot_errors: u64,
    /// Streams re-registered from valid snapshots at boot.
    pub streams_recovered: u64,
    /// Snapshot records that failed validation at boot and were
    /// quarantined.
    pub records_quarantined: u64,
    /// State of the replica-peer circuit breaker (`None` when no peer
    /// is configured).
    pub replica_breaker: Option<BreakerState>,
}

impl Stats {
    fn snapshot(&self, replica_breaker: Option<BreakerState>) -> StatsSnapshot {
        StatsSnapshot {
            conns_opened: self.conns_opened.load(Ordering::Relaxed),
            conns_closed: self.conns_closed.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            nacks: self.nacks.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            ingest_batches: self.ingest_batches.load(Ordering::Relaxed),
            ingest_items: self.ingest_items.load(Ordering::Relaxed),
            merges_accepted: self.merges_accepted.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            conn_panics: self.conn_panics.load(Ordering::Relaxed),
            flush_errors: self.flush_errors.load(Ordering::Relaxed),
            read_timeouts: self.read_timeouts.load(Ordering::Relaxed),
            streams_created: self.streams_created.load(Ordering::Relaxed),
            streams_retired: self.streams_retired.load(Ordering::Relaxed),
            replica_pushes: self.replica_pushes.load(Ordering::Relaxed),
            replica_push_errors: self.replica_push_errors.load(Ordering::Relaxed),
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed),
            snapshot_errors: self.snapshot_errors.load(Ordering::Relaxed),
            streams_recovered: self.streams_recovered.load(Ordering::Relaxed),
            records_quarantined: self.records_quarantined.load(Ordering::Relaxed),
            replica_breaker,
        }
    }
}

/// Bounded per-family store of merged-in wire images, validated on
/// arrival (capped `peek` + full zero-copy view parse) and fanned in at
/// query time with the multiway kernels.
struct MergeStore {
    families: [Mutex<Vec<Bytes>>; 4],
    cap: usize,
}

impl MergeStore {
    fn new(cap: usize) -> Self {
        MergeStore {
            families: [
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
            ],
            cap,
        }
    }

    fn slot(&self, family: SketchFamily) -> &Mutex<Vec<Bytes>> {
        &self.families[(family.code() - 1) as usize]
    }

    /// Appends an already-validated image; `Err` when the family's
    /// store is at capacity (the caller sheds).
    fn push(&self, family: SketchFamily, image: Bytes) -> Result<(), ()> {
        let mut v = self.slot(family).lock().unwrap_or_else(|e| e.into_inner());
        if v.len() >= self.cap {
            return Err(());
        }
        v.push(image);
        Ok(())
    }

    fn images(&self, family: SketchFamily) -> Vec<Bytes> {
        self.slot(family)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Run-state flags shared by every thread of the server.
#[derive(Debug, Default)]
struct Control {
    /// Stop admitting ingest/merge work (queries still served).
    draining: AtomicBool,
    /// Tear everything down: listener, connections, workers.
    shutdown: AtomicBool,
    /// A client sent a `Shutdown` frame; the embedder (e.g. the binary)
    /// polls this and calls [`ServerHandle::shutdown`].
    drain_requested: AtomicBool,
    /// Stops the background checkpointer ahead of the drain path's
    /// final checkpoint pass, so exactly one writer touches the store
    /// during teardown.
    checkpoint_stop: AtomicBool,
}

/// Everything a connection thread needs.
struct ServerCtx {
    cfg: ServerConfig,
    ctl: Control,
    stats: Stats,
    registry: Registry,
    store: MergeStore,
    /// The snapshot store of the durability tier (`None` when
    /// persistence is off).
    persist: Option<Arc<dyn SnapshotStore>>,
    /// Circuit breaker guarding the replica peer link (`None` when no
    /// peer is configured).
    replica_breaker: Option<Arc<CircuitBreaker>>,
    /// Worker-exit counts from streams retired before the drain, folded
    /// into the final [`DrainReport`].
    retired_flushed: AtomicUsize,
    retired_flush_failed: AtomicUsize,
    retired_panicked: AtomicUsize,
}

impl ServerCtx {
    /// The built-in v1 stream. Present from [`serve`] until drain.
    fn default_stream(&self) -> Option<Arc<StreamState>> {
        self.registry.get(DEFAULT_STREAM)
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats
            .snapshot(self.replica_breaker.as_ref().map(|b| b.state()))
    }
}

/// Why [`serve`] could not start. Startup is all-or-nothing: on any
/// variant every thread spawned so far has been joined and every
/// stream drained — a spawn failure can never leak a half-started
/// server.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Binding (or inspecting) the listener failed.
    Bind(io::Error),
    /// The built-in default stream could not be created.
    DefaultStream(String),
    /// Opening the snapshot directory failed.
    Store(io::Error),
    /// The boot-time snapshot scan failed outright (individual bad
    /// records never cause this — they are quarantined).
    Recover(String),
    /// A server thread could not be spawned.
    Spawn {
        /// Which thread (`"accept loop"`, `"replica pusher"`,
        /// `"checkpointer"`).
        what: &'static str,
        /// The OS error.
        source: io::Error,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "bind listener: {e}"),
            ServeError::DefaultStream(e) => write!(f, "create default stream: {e}"),
            ServeError::Store(e) => write!(f, "open snapshot directory: {e}"),
            ServeError::Recover(e) => write!(f, "recover snapshots: {e}"),
            ServeError::Spawn { what, source } => write!(f, "spawn {what}: {source}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind(e) | ServeError::Store(e) | ServeError::Spawn { source: e, .. } => {
                Some(e)
            }
            ServeError::DefaultStream(_) | ServeError::Recover(_) => None,
        }
    }
}

impl From<ServeError> for io::Error {
    fn from(e: ServeError) -> io::Error {
        match e {
            ServeError::Bind(e) | ServeError::Store(e) => e,
            other => io::Error::other(other.to_string()),
        }
    }
}

/// The running server: owns the accept loop, the stream registry (and
/// every stream's worker threads), the optional replica pusher and the
/// optional checkpointer. Obtain via [`serve`]; stop via
/// [`Self::shutdown`] (or drop, which performs an abrupt but still
/// joined teardown).
pub struct ServerHandle {
    ctx: Arc<ServerCtx>,
    addr: SocketAddr,
    accept_join: Option<JoinHandle<()>>,
    pusher_join: Option<JoinHandle<()>>,
    checkpoint_join: Option<JoinHandle<()>>,
    conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>>,
    recovery: Option<RecoveryOutcome>,
    drained: bool,
}

/// Outcome of a graceful drain: how cleanly the server went down.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct DrainReport {
    /// Workers whose queues drained and writers flushed cleanly.
    pub workers_flushed: usize,
    /// Workers whose final flush failed with a typed error.
    pub workers_flush_failed: usize,
    /// Workers that had died by panic before or during the drain.
    pub workers_panicked: usize,
    /// Threads that could not be joined (must be 0 — anything else is a
    /// leak).
    pub leaked_threads: usize,
    /// Final counter snapshot.
    pub stats: StatsSnapshot,
    /// Final estimate of the live engine after quiesce.
    pub final_estimate: f64,
}

/// Spawns a fully-wired stream: builds the engine for `family`, starts
/// `workers_n` worker threads each owning one engine writer, and
/// returns the state ready to insert into the registry.
fn spawn_stream(
    ctx: &Arc<ServerCtx>,
    key: &[u8],
    family: SketchFamily,
    workers_n: usize,
) -> Result<Arc<StreamState>, String> {
    let workers_n = workers_n.max(1);
    let engine = build_engine(family, ctx.cfg.lg_k, ctx.cfg.backend, workers_n)?;
    let mut handles = Vec::with_capacity(workers_n);
    let mut rxs: Vec<Receiver<Vec<u64>>> = Vec::with_capacity(workers_n);
    for _ in 0..workers_n {
        let (tx, rx) = sync_channel::<Vec<u64>>(ctx.cfg.queue_depth.max(1));
        handles.push(WorkerHandle {
            tx,
            breaker: Arc::new(CircuitBreaker::new(
                ctx.cfg.breaker_threshold.max(1),
                ctx.cfg.breaker_cooldown,
            )),
            dead: Arc::new(AtomicBool::new(false)),
        });
        rxs.push(rx);
    }
    let state = Arc::new(StreamState {
        key: key.to_vec(),
        family,
        engine,
        workers: handles,
        worker_joins: Mutex::new(Vec::with_capacity(workers_n)),
        next_worker: AtomicUsize::new(0),
        retired: AtomicBool::new(false),
        items: AtomicU64::new(0),
        replicas: Mutex::new(std::collections::HashMap::new()),
        pushed: Mutex::new(Vec::new()),
        recovered: Mutex::new(None),
        persisted_seq: AtomicU64::new(0),
        snapshot_dirty: AtomicBool::new(false),
    });
    let mut joins = Vec::with_capacity(workers_n);
    for (i, rx) in rxs.into_iter().enumerate() {
        let ctx = Arc::clone(ctx);
        let state2 = Arc::clone(&state);
        let writer = state.engine.writer();
        joins.push(
            std::thread::Builder::new()
                .name(format!("fcds-stream-worker-{i}"))
                .spawn(move || stream_worker(ctx, state2, i, writer, rx))
                .map_err(|e| format!("spawn stream worker: {e}"))?,
        );
    }
    *state.worker_joins.lock().unwrap_or_else(|e| e.into_inner()) = joins;
    ctx.stats.streams_created.fetch_add(1, Ordering::Relaxed);
    Ok(state)
}

/// Starts the server: binds the listener, spins up the default Θ stream
/// and its ingest workers, recovers every valid snapshot from
/// [`ServerConfig::data_dir`] (when set) **before accepting traffic**,
/// then starts the checkpointer/replica-pusher background threads and
/// the accept loop.
///
/// # Errors
///
/// Every startup failure — bind, engine build, snapshot-scan I/O,
/// thread spawn — is a typed [`ServeError`]; nothing on this path
/// panics, and on error every thread spawned so far has been joined.
pub fn serve(cfg: ServerConfig) -> Result<ServerHandle, ServeError> {
    let snapshot_store: Option<Arc<dyn SnapshotStore>> = match &cfg.data_dir {
        Some(dir) => Some(Arc::new(DirStore::new(dir).map_err(ServeError::Store)?)),
        None => None,
    };
    serve_with_store(cfg, snapshot_store)
}

/// [`serve`] with an explicit [`SnapshotStore`] (fault-injection tests
/// substitute stores that fail with ENOSPC, short writes or fsync
/// errors). `Some` enables the durability tier regardless of
/// [`ServerConfig::data_dir`].
pub fn serve_with_store(
    cfg: ServerConfig,
    snapshot_store: Option<Arc<dyn SnapshotStore>>,
) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(&cfg.addr).map_err(ServeError::Bind)?;
    let addr = listener.local_addr().map_err(ServeError::Bind)?;
    listener.set_nonblocking(true).map_err(ServeError::Bind)?;

    let store = MergeStore::new(cfg.merge_store_cap);
    let max_streams = cfg.max_streams.max(1);
    let replica_breaker = cfg.replica_peer.as_ref().map(|_| {
        Arc::new(CircuitBreaker::new(
            cfg.breaker_threshold.max(1),
            cfg.breaker_cooldown,
        ))
    });
    let ctx = Arc::new(ServerCtx {
        cfg,
        ctl: Control::default(),
        stats: Stats::default(),
        registry: Registry::new(max_streams),
        store,
        persist: snapshot_store,
        replica_breaker,
        retired_flushed: AtomicUsize::new(0),
        retired_flush_failed: AtomicUsize::new(0),
        retired_panicked: AtomicUsize::new(0),
    });

    // Joins all streams and any already-running background threads so
    // a failed startup never leaks a thread.
    let abort_start = |ctx: &Arc<ServerCtx>, joins: Vec<JoinHandle<()>>| {
        ctx.ctl.draining.store(true, Ordering::Release);
        ctx.ctl.shutdown.store(true, Ordering::Release);
        for state in ctx.registry.drain_all() {
            state.retired.store(true, Ordering::Release);
            let _ = state.join_workers();
        }
        for j in joins {
            let _ = j.join();
        }
    };

    let default_workers = ctx.cfg.ingest_workers.max(1);
    if let Err(e) = ctx
        .registry
        .get_or_create(DEFAULT_STREAM, SketchFamily::Theta, || {
            spawn_stream(&ctx, DEFAULT_STREAM, SketchFamily::Theta, default_workers)
        })
    {
        abort_start(&ctx, Vec::new());
        return Err(ServeError::DefaultStream(format!("{e:?}")));
    }

    // Recover before anything can observe the registry: by the time the
    // accept loop exists, every valid snapshot is a live stream.
    let recovery = match ctx.persist.clone() {
        Some(snap_store) => match recover::recover_streams(&ctx, &*snap_store) {
            Ok(outcome) => Some(outcome),
            Err(e) => {
                abort_start(&ctx, Vec::new());
                return Err(ServeError::Recover(e));
            }
        },
        None => None,
    };

    let spawn_named = |name: &str, f: Box<dyn FnOnce() + Send>| {
        std::thread::Builder::new().name(name.to_string()).spawn(f)
    };

    let checkpoint_join = match ctx.persist.clone() {
        Some(snap_store) => {
            let ctx2 = Arc::clone(&ctx);
            match spawn_named(
                "fcds-checkpoint",
                Box::new(move || persist::checkpointer(ctx2, snap_store)),
            ) {
                Ok(j) => Some(j),
                Err(source) => {
                    abort_start(&ctx, Vec::new());
                    return Err(ServeError::Spawn {
                        what: "checkpointer",
                        source,
                    });
                }
            }
        }
        None => None,
    };

    let pusher_join = match ctx.cfg.replica_peer.clone() {
        Some(peer) => {
            let ctx2 = Arc::clone(&ctx);
            match spawn_named(
                "fcds-replica-push",
                Box::new(move || replica_pusher(ctx2, peer)),
            ) {
                Ok(j) => Some(j),
                Err(source) => {
                    let joins = checkpoint_join.into_iter().collect();
                    abort_start(&ctx, joins);
                    return Err(ServeError::Spawn {
                        what: "replica pusher",
                        source,
                    });
                }
            }
        }
        None => None,
    };

    let conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let accept_join = {
        let ctx2 = Arc::clone(&ctx);
        let conn_joins2 = Arc::clone(&conn_joins);
        match spawn_named(
            "fcds-accept",
            Box::new(move || accept_loop(listener, ctx2, conn_joins2)),
        ) {
            Ok(j) => j,
            Err(source) => {
                let joins = checkpoint_join.into_iter().chain(pusher_join).collect();
                abort_start(&ctx, joins);
                return Err(ServeError::Spawn {
                    what: "accept loop",
                    source,
                });
            }
        }
    };

    Ok(ServerHandle {
        ctx,
        addr,
        accept_join: Some(accept_join),
        pusher_join,
        checkpoint_join,
        conn_joins,
        recovery,
        drained: false,
    })
}

impl ServerHandle {
    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.ctx.stats_snapshot()
    }

    /// What boot-time recovery did (`None` when persistence is off).
    pub fn recovery_outcome(&self) -> Option<&RecoveryOutcome> {
        self.recovery.as_ref()
    }

    /// Whether any stream lost an ingest worker (panic or dead
    /// propagator) — degraded but still serving.
    pub fn is_degraded(&self) -> bool {
        self.ctx
            .registry
            .list()
            .iter()
            .any(|s| s.workers.iter().any(|w| w.dead.load(Ordering::Acquire)))
    }

    /// Whether some client requested a drain with a `Shutdown` frame.
    pub fn drain_requested(&self) -> bool {
        self.ctx.ctl.drain_requested.load(Ordering::Acquire)
    }

    /// Estimate of the default stream's live Θ engine (concurrent query
    /// path).
    pub fn live_estimate(&self) -> f64 {
        self.ctx
            .default_stream()
            .and_then(|s| s.engine.estimate())
            .unwrap_or(0.0)
    }

    /// Every live stream: key, family, items ingested, durability lag.
    pub fn list_streams(&self) -> Vec<StreamInfo> {
        self.ctx
            .registry
            .list()
            .iter()
            .map(|s| {
                let items = s.items.load(Ordering::Relaxed);
                let last_persisted_seq = s.persisted_seq.load(Ordering::Relaxed);
                StreamInfo {
                    key: s.key.clone(),
                    family: s.family,
                    items,
                    last_persisted_seq,
                    snapshot_lag: items.saturating_sub(last_persisted_seq),
                }
            })
            .collect()
    }

    /// Retires a stream: removes it from the registry, drains and joins
    /// its workers, and quiesces its engine. Returns `false` for the
    /// default stream (not retirable) or an unknown key. A later v2
    /// ingest/merge under the same key creates a fresh stream.
    pub fn retire_stream(&self, key: &[u8]) -> bool {
        if key == DEFAULT_STREAM {
            return false;
        }
        let Some(state) = self.ctx.registry.retire(key) else {
            return false;
        };
        state.retired.store(true, Ordering::Release);
        let (flushed, failed, panicked, _leaked) = state.join_workers();
        self.ctx
            .retired_flushed
            .fetch_add(flushed, Ordering::Relaxed);
        self.ctx
            .retired_flush_failed
            .fetch_add(failed, Ordering::Relaxed);
        self.ctx
            .retired_panicked
            .fetch_add(panicked, Ordering::Relaxed);
        state.engine.quiesce();
        // Retirement is permanent: drop the snapshot too, so a restart
        // cannot resurrect the retired stream.
        if let Some(store) = &self.ctx.persist {
            let _ = store.remove(&persist::snapshot_file_name(key));
        }
        self.ctx
            .stats
            .streams_retired
            .fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Gracefully drains and stops the server:
    ///
    /// 1. stop admitting ingest/merge (`Draining` NACKs from here on);
    /// 2. let workers drain their queues and flush their writers;
    /// 3. quiesce the engine (merges every hand-off, republishes
    ///    images);
    /// 4. close the listener and every connection, joining all threads.
    pub fn shutdown(mut self) -> DrainReport {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> DrainReport {
        self.drained = true;
        self.ctx.ctl.draining.store(true, Ordering::Release);

        // Hand snapshot writing over to this thread: stop and join the
        // checkpointer *before* the final post-quiesce checkpoints, so
        // a stale concurrent round can never overwrite a final record.
        self.ctx.ctl.checkpoint_stop.store(true, Ordering::Release);
        let mut leaked_threads = 0usize;
        if let Some(j) = self.checkpoint_join.take() {
            if j.join().is_err() {
                leaked_threads += 1;
            }
        }

        // Carry over worker exits from streams retired before the
        // drain, then drain every remaining stream.
        let mut workers_flushed = self.ctx.retired_flushed.load(Ordering::Relaxed);
        let mut workers_flush_failed = self.ctx.retired_flush_failed.load(Ordering::Relaxed);
        let mut workers_panicked = self.ctx.retired_panicked.load(Ordering::Relaxed);
        let mut final_estimate = 0.0f64;
        let mut wrote_final_snapshot = false;
        for state in self.ctx.registry.drain_all() {
            state.retired.store(true, Ordering::Release);
            let (flushed, failed, panicked, leaked) = state.join_workers();
            workers_flushed += flushed;
            workers_flush_failed += failed;
            workers_panicked += panicked;
            leaked_threads += leaked;
            // Writers are flushed (or dead); merge what is in flight
            // and republish every shard image.
            state.engine.quiesce();
            if state.key == DEFAULT_STREAM {
                // Fan in like a query so boot-recovered state counts.
                final_estimate = theta_multiway_union(&state.images())
                    .map(|s| s.estimate())
                    .unwrap_or_else(|_| state.engine.estimate().unwrap_or(0.0));
            }
            // Final checkpoint after quiesce: a *graceful* shutdown is
            // zero-loss, the bounded-loss window applies to crashes
            // only.
            if let Some(store) = &self.ctx.persist {
                let fsync_file = self.ctx.cfg.fsync_policy == FsyncPolicy::Always;
                match persist::checkpoint_stream(&state, &**store, fsync_file) {
                    Ok(true) => {
                        wrote_final_snapshot = true;
                        self.ctx
                            .stats
                            .snapshots_written
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(false) => {}
                    Err(_) => {
                        self.ctx
                            .stats
                            .snapshot_errors
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        if wrote_final_snapshot && self.ctx.cfg.fsync_policy != FsyncPolicy::Never {
            if let Some(store) = &self.ctx.persist {
                if store.sync_dir().is_err() {
                    self.ctx
                        .stats
                        .snapshot_errors
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        self.ctx.ctl.shutdown.store(true, Ordering::Release);
        if let Some(j) = self.pusher_join.take() {
            if j.join().is_err() {
                leaked_threads += 1;
            }
        }
        if let Some(j) = self.accept_join.take() {
            if j.join().is_err() {
                leaked_threads += 1;
            }
        }
        let joins = {
            let mut g = self.conn_joins.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *g)
        };
        for j in joins {
            if j.join().is_err() {
                leaked_threads += 1;
            }
        }

        DrainReport {
            workers_flushed,
            workers_flush_failed,
            workers_panicked,
            leaked_threads,
            stats: self.ctx.stats_snapshot(),
            final_estimate,
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.drained {
            let _ = self.shutdown_inner();
        }
    }
}

/// The per-stream ingest worker: drains its bounded queue into its
/// engine writer (family-generic through [`EngineWriter`]). Runs under
/// `catch_unwind`; a panic (injected faults, engine bugs) kills only
/// this worker, trips its breaker, and marks it dead so dispatch routes
/// around it — workers of *other* streams are untouched, which is the
/// per-stream isolation property the registry suite asserts.
fn stream_worker(
    ctx: Arc<ServerCtx>,
    state: Arc<StreamState>,
    index: usize,
    writer: Box<dyn EngineWriter>,
    rx: Receiver<Vec<u64>>,
) -> WorkerExit {
    let me = state.workers[index].clone();
    let exit = catch_unwind(AssertUnwindSafe(|| {
        stream_worker_impl(&ctx, &state, &me, writer, &rx)
    }));
    match exit {
        Ok(e) => e,
        Err(_) => {
            me.dead.store(true, Ordering::Release);
            me.breaker.trip();
            ctx.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
            WorkerExit::Panicked
        }
    }
}

fn stream_worker_impl(
    ctx: &ServerCtx,
    state: &StreamState,
    me: &WorkerHandle,
    mut writer: Box<dyn EngineWriter>,
    rx: &Receiver<Vec<u64>>,
) -> WorkerExit {
    loop {
        match rx.recv_timeout(POLL_INTERVAL) {
            Ok(batch) => {
                if let Some(poison) = ctx.cfg.fault_panic_on {
                    if batch.contains(&poison) {
                        panic!("injected fault: poisoned ingest item {poison}");
                    }
                }
                let n = batch.len() as u64;
                writer.ingest_batch(&batch);
                // Surface engine-side propagation faults (a dead
                // propagator thread) promptly instead of only at drain:
                // flush after each batch. With the writer-assisted
                // backend this is propagation the writer performs
                // anyway; with the dedicated-thread backend it bounds
                // the un-acked window to one batch.
                match writer.flush() {
                    Ok(()) => {
                        ctx.stats.ingest_items.fetch_add(n, Ordering::Relaxed);
                        state.items.fetch_add(n, Ordering::Relaxed);
                        me.breaker.record_success();
                    }
                    Err(_e) => {
                        ctx.stats.flush_errors.fetch_add(1, Ordering::Relaxed);
                        me.dead.store(true, Ordering::Release);
                        me.breaker.trip();
                        return WorkerExit::FlushFailed;
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if ctx.ctl.draining.load(Ordering::Acquire)
                    || ctx.ctl.shutdown.load(Ordering::Acquire)
                    || state.retired.load(Ordering::Acquire)
                {
                    // Dispatch stopped admitting before the flag was
                    // set, so an empty poll during a drain/retire means
                    // the queue is finally dry: flush and exit.
                    return match writer.flush() {
                        Ok(()) => WorkerExit::Flushed,
                        Err(_) => {
                            ctx.stats.flush_errors.fetch_add(1, Ordering::Relaxed);
                            me.dead.store(true, Ordering::Release);
                            me.breaker.trip();
                            WorkerExit::FlushFailed
                        }
                    };
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                // All senders gone (server handle dropped mid-teardown).
                return match writer.flush() {
                    Ok(()) => WorkerExit::Flushed,
                    Err(_) => WorkerExit::FlushFailed,
                };
            }
        }
    }
}

/// Advances a xorshift64 state and scales `base` by a ±25% jitter
/// factor. Hand-rolled so the server crate stays dependency-free; the
/// point of the jitter is only to de-synchronise retry storms from
/// many pushers against one recovering peer.
fn jittered(rng: &mut u64, base: Duration) -> Duration {
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    let frac = (*rng >> 40) as f64 / (1u64 << 24) as f64; // uniform [0, 1)
    base.mul_f64(0.75 + 0.5 * frac)
}

/// The background replica pusher: every `replica_interval`, encode what
/// this server holds for each stream (live engine image fanned in with
/// the boot-recovered slot, so a post-crash push never shrinks the
/// peer's slot to an empty just-restarted engine) and ship it to the
/// peer as a v2 REPLACE merge under this server's source id.
///
/// The peer link is guarded by the server-wide circuit breaker:
/// transport failures (connect/write/read errors) count toward opening
/// it, and while it is open the pusher backs off exponentially — the
/// delay doubles per failed round up to 16× `replica_interval`, with
/// ±25% jitter — instead of hammering a dead peer at full interval.
/// A successful round closes the breaker and resets the delay. Typed
/// peer NACKs (draining, at capacity) are counted as push errors but
/// keep the connection and the breaker closed: the peer is alive and
/// framing is intact. The pusher never takes the server down.
fn replica_pusher(ctx: Arc<ServerCtx>, peer: String) {
    let breaker = ctx
        .replica_breaker
        .clone()
        .unwrap_or_else(|| Arc::new(CircuitBreaker::new(1, ctx.cfg.breaker_cooldown)));
    let mut rng = ctx
        .cfg
        .replica_source_id
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        | 1;
    let base = ctx.cfg.replica_interval;
    let backoff_cap = base.saturating_mul(16);
    let mut delay = base;
    let mut client: Option<Client> = None;
    let mut next_push = Instant::now() + base;
    loop {
        if ctx.ctl.shutdown.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(POLL_INTERVAL);
        if Instant::now() < next_push {
            continue;
        }
        if !breaker.allow() {
            // Open breaker (cooldown not yet elapsed): re-check after
            // the current backoff delay instead of busy-probing.
            next_push = Instant::now() + jittered(&mut rng, delay);
            continue;
        }
        let mut transport_failed = false;
        if client.is_none() {
            client = Client::connect(peer.as_str(), ctx.cfg.write_timeout).ok();
            if client.is_none() {
                ctx.stats
                    .replica_push_errors
                    .fetch_add(1, Ordering::Relaxed);
                transport_failed = true;
            }
        }
        if let Some(c) = client.as_mut() {
            for state in ctx.registry.list() {
                let images = persist::own_images(&state);
                let image = if images.len() == 1 {
                    images.into_iter().next().expect("live image")
                } else {
                    match persist::merged_image(state.family, &images) {
                        Ok(img) => img,
                        Err(_) => {
                            ctx.stats
                                .replica_push_errors
                                .fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    }
                };
                let pushed = c.merge_stream_from(
                    state.family,
                    &state.key,
                    ctx.cfg.replica_source_id,
                    &image,
                );
                match pushed {
                    Ok(Reply::Ack { .. }) => {
                        ctx.stats.replica_pushes.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(_) => {
                        // Typed NACK (peer draining, at capacity…):
                        // count and keep the connection — framing is
                        // intact and the peer is demonstrably alive.
                        ctx.stats
                            .replica_push_errors
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        ctx.stats
                            .replica_push_errors
                            .fetch_add(1, Ordering::Relaxed);
                        client = None; // reconnect after backoff
                        transport_failed = true;
                        break;
                    }
                }
            }
        }
        if transport_failed {
            breaker.record_failure();
            delay = (delay * 2).min(backoff_cap);
            next_push = Instant::now() + jittered(&mut rng, delay);
        } else {
            breaker.record_success();
            delay = base;
            next_push = Instant::now() + base;
        }
    }
}

/// Accepts connections until shutdown; each connection gets its own
/// thread wrapped in `catch_unwind`.
fn accept_loop(
    listener: TcpListener,
    ctx: Arc<ServerCtx>,
    conn_joins: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut conn_id = 0u64;
    loop {
        if ctx.ctl.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                conn_id += 1;
                ctx.stats.conns_opened.fetch_add(1, Ordering::Relaxed);
                let ctx2 = Arc::clone(&ctx);
                let spawned = std::thread::Builder::new()
                    .name(format!("fcds-conn-{conn_id}"))
                    .spawn(move || {
                        let ctx3 = Arc::clone(&ctx2);
                        let r = catch_unwind(AssertUnwindSafe(move || {
                            handle_connection(stream, &ctx2);
                        }));
                        if r.is_err() {
                            ctx3.stats.conn_panics.fetch_add(1, Ordering::Relaxed);
                        }
                        ctx3.stats.conns_closed.fetch_add(1, Ordering::Relaxed);
                    });
                match spawned {
                    Ok(handle) => {
                        let mut joins = conn_joins.lock().unwrap_or_else(|e| e.into_inner());
                        // Reap finished threads so the vec stays bounded
                        // by the number of *live* connections.
                        joins.retain(|j| !j.is_finished());
                        joins.push(handle);
                    }
                    Err(_) => {
                        // Out of threads: shed this connection (the
                        // socket closes on drop) and keep accepting —
                        // resource exhaustion must not kill the server.
                        ctx.stats.conns_closed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => {
                // Transient accept errors (aborted handshakes) — retry.
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }
}

/// What the frame reader produced.
enum ReadEvent {
    /// A validated frame.
    Frame(Frame),
    /// A protocol violation; NACK with `err`'s code and close if
    /// `err.closes_connection()`.
    Bad { seq: u16, err: HeaderError },
    /// The peer closed (or the server is shutting down) — exit quietly.
    Closed,
    /// Mid-frame deadline blown: best-effort Timeout NACK, then close.
    TimedOut { seq: u16 },
}

/// Reads exactly `buf.len()` bytes, polling the shutdown flag and
/// enforcing `deadline` (set by the caller once a frame has started).
fn read_exact_ctl(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: &mut Option<Instant>,
    ctx: &ServerCtx,
) -> io::Result<ReadProgress> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Ok(ReadProgress::Closed),
            Ok(n) => {
                filled += n;
                if deadline.is_none() {
                    *deadline = Some(Instant::now() + ctx.cfg.frame_deadline);
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if ctx.ctl.shutdown.load(Ordering::Acquire) {
                    return Ok(ReadProgress::Closed);
                }
                if let Some(d) = *deadline {
                    if Instant::now() >= d {
                        return Ok(ReadProgress::TimedOut);
                    }
                }
                if filled == 0 {
                    // Idle between frames: not an error, keep polling.
                    return Ok(ReadProgress::Idle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadProgress::Done)
}

enum ReadProgress {
    Done,
    Idle,
    Closed,
    TimedOut,
}

/// Reads one frame (or classifies why one could not be read).
fn read_frame(stream: &mut TcpStream, ctx: &ServerCtx) -> io::Result<ReadEvent> {
    let mut header_bytes = [0u8; FRAME_HEADER_LEN];
    let mut deadline: Option<Instant> = None;
    // Header: loop on Idle (no frame started yet).
    loop {
        match read_exact_ctl(stream, &mut header_bytes, &mut deadline, ctx)? {
            ReadProgress::Done => break,
            ReadProgress::Idle => continue,
            ReadProgress::Closed => return Ok(ReadEvent::Closed),
            ReadProgress::TimedOut => return Ok(ReadEvent::TimedOut { seq: 0 }),
        }
    }
    // Sequence number for NACKs even when validation fails (only
    // meaningful if the magic matched; 0 otherwise).
    let raw_seq = u16::from_le_bytes(header_bytes[6..8].try_into().expect("2 bytes"));
    let header = match parse_header(&header_bytes, ctx.cfg.max_frame_payload, true) {
        Ok(h) => h,
        Err(err) => {
            let seq = if matches!(err, HeaderError::BadMagic { .. }) {
                0
            } else {
                raw_seq
            };
            // For keep-open violations (unknown type, bad flags) the
            // framing is intact: skim the declared payload so the next
            // frame starts at a boundary. The declared length is still
            // capped before we trust it.
            if !err.closes_connection() {
                let declared = u32::from_le_bytes(header_bytes[8..12].try_into().expect("4 bytes"));
                if declared > ctx.cfg.max_frame_payload {
                    return Ok(ReadEvent::Bad {
                        seq,
                        err: HeaderError::PayloadTooLarge {
                            declared,
                            cap: ctx.cfg.max_frame_payload,
                        },
                    });
                }
                let mut discard = vec![0u8; declared as usize];
                loop {
                    match read_exact_ctl(stream, &mut discard, &mut deadline, ctx)? {
                        ReadProgress::Done => break,
                        ReadProgress::Idle => continue,
                        ReadProgress::Closed => return Ok(ReadEvent::Closed),
                        ReadProgress::TimedOut => return Ok(ReadEvent::TimedOut { seq }),
                    }
                }
            }
            return Ok(ReadEvent::Bad { seq, err });
        }
    };
    let mut payload = vec![0u8; header.payload_len as usize];
    loop {
        match read_exact_ctl(stream, &mut payload, &mut deadline, ctx)? {
            ReadProgress::Done => break,
            ReadProgress::Idle => continue,
            ReadProgress::Closed => return Ok(ReadEvent::Closed),
            ReadProgress::TimedOut => return Ok(ReadEvent::TimedOut { seq: header.seq }),
        }
    }
    if let Err(err) = check_payload(&header, &payload) {
        return Ok(ReadEvent::Bad {
            seq: header.seq,
            err,
        });
    }
    Ok(ReadEvent::Frame(Frame {
        ftype: header.ftype,
        flags: header.flags,
        seq: header.seq,
        payload,
    }))
}

/// One response frame to write back.
struct Response {
    ftype: FrameType,
    seq: u16,
    payload: Vec<u8>,
    /// Close the connection after writing.
    close: bool,
}

impl Response {
    fn ack(seq: u16) -> Response {
        Response {
            ftype: FrameType::Ack,
            seq,
            payload: Vec::new(),
            close: false,
        }
    }

    fn nack(seq: u16, code: NackCode, detail: &str, close: bool) -> Response {
        Response {
            ftype: FrameType::Nack,
            seq,
            payload: encode_nack_payload(code, detail),
            close,
        }
    }
}

/// Serves one connection until close/shutdown/fatal error.
fn handle_connection(mut stream: TcpStream, ctx: &Arc<ServerCtx>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(ctx.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        let event = match read_frame(&mut stream, ctx) {
            Ok(e) => e,
            Err(_) => return, // hard I/O error: nothing sane to send
        };
        let response = match event {
            ReadEvent::Closed => return,
            ReadEvent::TimedOut { seq } => {
                ctx.stats.read_timeouts.fetch_add(1, Ordering::Relaxed);
                Response::nack(
                    seq,
                    NackCode::Timeout,
                    "mid-frame read deadline blown",
                    true,
                )
            }
            ReadEvent::Bad { seq, err } => Response::nack(
                seq,
                err.nack_code(),
                &err.to_string(),
                err.closes_connection(),
            ),
            ReadEvent::Frame(frame) => {
                ctx.stats.frames_in.fetch_add(1, Ordering::Relaxed);
                dispatch_frame(frame, ctx)
            }
        };
        let close = response.close;
        if write_response(&mut stream, ctx, response).is_err() || close {
            return;
        }
    }
}

fn write_response(stream: &mut TcpStream, ctx: &ServerCtx, r: Response) -> io::Result<()> {
    if r.ftype == FrameType::Nack {
        ctx.stats.nacks.fetch_add(1, Ordering::Relaxed);
    }
    let bytes = encode_frame(r.ftype, r.seq, &r.payload);
    stream.write_all(&bytes)?;
    ctx.stats.frames_out.fetch_add(1, Ordering::Relaxed);
    Ok(())
}

/// Routes one validated frame to its handler and produces the response.
fn dispatch_frame(frame: Frame, ctx: &Arc<ServerCtx>) -> Response {
    match frame.ftype {
        FrameType::Ping => Response {
            ftype: FrameType::Pong,
            seq: frame.seq,
            payload: Vec::new(),
            close: false,
        },
        FrameType::Ingest => handle_ingest(frame, ctx),
        FrameType::Merge => handle_merge(frame, ctx),
        FrameType::Query => handle_query(frame, ctx),
        FrameType::Shutdown => {
            ctx.ctl.drain_requested.store(true, Ordering::Release);
            ctx.ctl.draining.store(true, Ordering::Release);
            Response::ack(frame.seq)
        }
        // parse_header's direction check makes these unreachable, but
        // route them to a typed error rather than a panic if it ever
        // regresses.
        _ => Response::nack(
            frame.seq,
            NackCode::Malformed,
            "server-side frame type",
            false,
        ),
    }
}

/// Resolves a v2 stream prefix against the registry. `create` is true
/// for ingest/merge (create-on-first-use) and false for queries
/// ([`NackCode::UnknownStream`] instead).
fn resolve_stream(
    ctx: &Arc<ServerCtx>,
    seq: u16,
    prefix: &StreamPrefix<'_>,
    create: bool,
) -> Result<Arc<StreamState>, Response> {
    let mismatch = |expected: SketchFamily| {
        Response::nack(
            seq,
            NackCode::FamilyMismatch,
            &format!(
                "stream was created as {}, frame declared {}",
                expected.name(),
                prefix.family.name()
            ),
            false,
        )
    };
    if create {
        let workers = ctx.cfg.stream_workers.max(1);
        match ctx.registry.get_or_create(prefix.key, prefix.family, || {
            spawn_stream(ctx, prefix.key, prefix.family, workers)
        }) {
            Ok((stream, _created)) => Ok(stream),
            Err(CreateError::FamilyMismatch { expected }) => Err(mismatch(expected)),
            Err(CreateError::AtCapacity) => Err(Response::nack(
                seq,
                NackCode::Overload,
                "stream registry at capacity; retire a stream first",
                false,
            )),
            Err(CreateError::Build(e)) => Err(Response::nack(seq, NackCode::Internal, &e, false)),
        }
    } else {
        match ctx.registry.get(prefix.key) {
            Some(stream) if stream.family == prefix.family => Ok(stream),
            Some(stream) => Err(mismatch(stream.family)),
            None => Err(Response::nack(
                seq,
                NackCode::UnknownStream,
                "no such stream (queries never create streams)",
                false,
            )),
        }
    }
}

fn handle_ingest(frame: Frame, ctx: &Arc<ServerCtx>) -> Response {
    if ctx.ctl.draining.load(Ordering::Acquire) {
        return Response::nack(frame.seq, NackCode::Draining, "server is draining", false);
    }
    let (stream, body) = if frame.flags & FLAG_STREAM != 0 {
        match split_stream_prefix(&frame.payload, false) {
            Ok((prefix, body)) => match resolve_stream(ctx, frame.seq, &prefix, true) {
                Ok(stream) => (stream, body),
                Err(nack) => return nack,
            },
            Err(e) => return Response::nack(frame.seq, NackCode::Malformed, &e.to_string(), false),
        }
    } else {
        match ctx.default_stream() {
            Some(stream) => (stream, frame.payload.as_slice()),
            None => {
                return Response::nack(
                    frame.seq,
                    NackCode::Internal,
                    "default stream missing",
                    false,
                )
            }
        }
    };
    if !body.len().is_multiple_of(8) {
        return Response::nack(
            frame.seq,
            NackCode::Malformed,
            "ingest payload must be a whole number of u64 items",
            false,
        );
    }
    let items: Vec<u64> = body
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    if items.is_empty() {
        return Response::ack(frame.seq);
    }
    ingest_into(&stream, items, ctx, frame.seq)
}

/// Routes one batch into `stream`'s workers: round-robin over live
/// workers with closed breakers; a full queue records a breaker failure
/// and tries the next. Failure NACKs are scoped to this stream — other
/// streams' workers and breakers are never consulted.
fn ingest_into(stream: &StreamState, items: Vec<u64>, ctx: &ServerCtx, seq: u16) -> Response {
    let n = stream.workers.len();
    let start = stream.next_worker.fetch_add(1, Ordering::Relaxed);
    let mut batch = items;
    let mut saw_full = false;
    let mut saw_open = false;
    for i in 0..n {
        let w = &stream.workers[(start + i) % n];
        if w.dead.load(Ordering::Acquire) {
            continue;
        }
        if !w.breaker.allow() {
            saw_open = true;
            continue;
        }
        match w.tx.try_send(batch) {
            Ok(()) => {
                ctx.stats.ingest_batches.fetch_add(1, Ordering::Relaxed);
                return Response::ack(seq);
            }
            Err(TrySendError::Full(b)) => {
                w.breaker.record_failure();
                saw_full = true;
                batch = b;
            }
            Err(TrySendError::Disconnected(b)) => {
                // Worker gone without marking dead (shouldn't happen,
                // but never wedge on it).
                w.dead.store(true, Ordering::Release);
                w.breaker.trip();
                batch = b;
            }
        }
    }
    ctx.stats.sheds.fetch_add(1, Ordering::Relaxed);
    if saw_full {
        Response::nack(
            seq,
            NackCode::Overload,
            "all ingest queues full; back off and retry",
            false,
        )
    } else if saw_open {
        Response::nack(
            seq,
            NackCode::BreakerOpen,
            "ingest breakers open; retry after cooldown",
            false,
        )
    } else {
        Response::nack(seq, NackCode::Internal, "no live ingest backend", false)
    }
}

/// Pre-screens an envelope with the capped peek (never size anything
/// from an unvalidated declared length), then fully validates with the
/// family's zero-copy view so only decodable images are stored. Also
/// the validation gate for snapshot-embedded images at recovery.
pub(crate) fn validate_envelope(payload: &[u8], cap: u32) -> Result<SketchFamily, String> {
    let peeked = peek(payload, cap as u64).map_err(|e| e.to_string())?;
    match peeked.family {
        SketchFamily::Theta => ThetaWireView::parse(payload).map(|_| ()),
        SketchFamily::Hll => HllWireView::parse(payload).map(|_| ()),
        SketchFamily::Quantiles => LadderWireView::<u64>::parse(payload).map(|_| ()),
        SketchFamily::Frequency => MgWireView::<u64>::parse(payload).map(|_| ()),
    }
    .map_err(|e| e.to_string())?;
    Ok(peeked.family)
}

fn handle_merge(frame: Frame, ctx: &Arc<ServerCtx>) -> Response {
    if ctx.ctl.draining.load(Ordering::Acquire) {
        return Response::nack(frame.seq, NackCode::Draining, "server is draining", false);
    }
    if frame.flags & FLAG_STREAM != 0 {
        let replace = frame.flags & FLAG_REPLACE != 0;
        let (prefix, body) = match split_stream_prefix(&frame.payload, replace) {
            Ok(split) => split,
            Err(e) => return Response::nack(frame.seq, NackCode::Malformed, &e.to_string(), false),
        };
        // Create-on-first-merge: a replica push materialises the stream
        // on the receiving peer before any local ingest.
        let stream = match resolve_stream(ctx, frame.seq, &prefix, true) {
            Ok(stream) => stream,
            Err(nack) => return nack,
        };
        let family = match validate_envelope(body, ctx.cfg.max_frame_payload) {
            Ok(f) => f,
            Err(e) => return Response::nack(frame.seq, NackCode::Wire, &e, false),
        };
        if family != stream.family {
            return Response::nack(
                frame.seq,
                NackCode::FamilyMismatch,
                &format!(
                    "envelope is {}, stream is {}",
                    family.name(),
                    stream.family.name()
                ),
                false,
            );
        }
        let image = Bytes::from(body.to_vec());
        if let Some(source) = prefix.source {
            // Replace-by-source: idempotent under periodic re-push.
            let mut replicas = stream.replicas.lock().unwrap_or_else(|e| e.into_inner());
            if !replicas.contains_key(&source) && replicas.len() >= ctx.cfg.merge_store_cap {
                return Response::nack(
                    frame.seq,
                    NackCode::Overload,
                    "replica slots at capacity for this stream",
                    false,
                );
            }
            replicas.insert(source, image);
        } else {
            let mut pushed = stream.pushed.lock().unwrap_or_else(|e| e.into_inner());
            if pushed.len() >= ctx.cfg.merge_store_cap {
                return Response::nack(
                    frame.seq,
                    NackCode::Overload,
                    "merge store at capacity for this stream",
                    false,
                );
            }
            pushed.push(image);
            // Pushed images are part of the durable state; make the
            // checkpointer rewrite the snapshot even if `items` is
            // unchanged. (Replica slots are not: their source re-pushes
            // them within one replica_interval.)
            stream.snapshot_dirty.store(true, Ordering::Release);
        }
        ctx.stats.merges_accepted.fetch_add(1, Ordering::Relaxed);
        return Response::ack(frame.seq);
    }
    // v1: the global per-family merge store.
    let family = match validate_envelope(&frame.payload, ctx.cfg.max_frame_payload) {
        Ok(f) => f,
        Err(e) => return Response::nack(frame.seq, NackCode::Wire, &e, false),
    };
    match ctx.store.push(family, Bytes::from(frame.payload)) {
        Ok(()) => {
            ctx.stats.merges_accepted.fetch_add(1, Ordering::Relaxed);
            Response::ack(frame.seq)
        }
        Err(()) => Response::nack(
            frame.seq,
            NackCode::Overload,
            "merge store at capacity for this family",
            false,
        ),
    }
}

/// Serves a v2 per-stream query: fans the stream's live image, replica
/// slots and pushed images together with the family's multiway kernel.
fn stream_query(seq: u16, stream: &StreamState, kind: u8) -> Response {
    let images = stream.images();
    let wire_err =
        |e: fcds_sketches::WireError| Response::nack(seq, NackCode::Wire, &e.to_string(), false);
    let estimate = |value: f64| Response {
        ftype: FrameType::Estimate,
        seq,
        payload: value.to_bits().to_le_bytes().to_vec(),
        close: false,
    };
    let image = |bytes: Bytes| Response {
        ftype: FrameType::Image,
        seq,
        payload: bytes.as_ref().to_vec(),
        close: false,
    };
    match (kind, stream.family) {
        (0, SketchFamily::Theta) => match theta_multiway_union(&images) {
            Ok(s) => estimate(s.estimate()),
            Err(e) => wire_err(e),
        },
        (0, SketchFamily::Hll) => match hll_multiway_merge(&images) {
            Ok(s) => estimate(s.estimate()),
            Err(e) => wire_err(e),
        },
        (0, _) => Response::nack(
            seq,
            NackCode::Unsupported,
            "quantiles/frequency families have no scalar estimate; query the image",
            false,
        ),
        (1, SketchFamily::Theta) => match theta_multiway_union(&images) {
            Ok(s) => image(s.to_wire_bytes()),
            Err(e) => wire_err(e),
        },
        (1, SketchFamily::Hll) => match hll_multiway_merge(&images) {
            Ok(s) => image(s.to_wire_bytes()),
            Err(e) => wire_err(e),
        },
        (1, SketchFamily::Quantiles) => match ladder_multiway_concat::<u64, _>(&images) {
            Ok(s) => image(s.to_wire_bytes()),
            Err(e) => wire_err(e),
        },
        (1, SketchFamily::Frequency) => match mg_multiway_merge::<u64, _>(&images) {
            Ok(s) => image(s.to_wire_bytes()),
            Err(e) => wire_err(e),
        },
        _ => Response::nack(seq, NackCode::Malformed, "unknown query kind", false),
    }
}

fn handle_query(frame: Frame, ctx: &Arc<ServerCtx>) -> Response {
    if frame.flags & FLAG_STREAM != 0 {
        let (prefix, body) = match split_stream_prefix(&frame.payload, false) {
            Ok(split) => split,
            Err(e) => return Response::nack(frame.seq, NackCode::Malformed, &e.to_string(), false),
        };
        let stream = match resolve_stream(ctx, frame.seq, &prefix, false) {
            Ok(stream) => stream,
            Err(nack) => return nack,
        };
        // Same 2-byte selector as v1; the family byte is redundant with
        // the prefix and ignored.
        let kind = match body {
            [k, _family] => *k,
            _ => {
                return Response::nack(
                    frame.seq,
                    NackCode::Malformed,
                    "query payload must be [kind, family]",
                    false,
                )
            }
        };
        return stream_query(frame.seq, &stream, kind);
    }
    let [kind, family] = match frame.payload.as_slice() {
        [k, f] => [*k, *f],
        _ => {
            return Response::nack(
                frame.seq,
                NackCode::Malformed,
                "query payload must be [kind, family]",
                false,
            )
        }
    };
    let wire_err = |e: fcds_sketches::WireError| {
        Response::nack(frame.seq, NackCode::Wire, &e.to_string(), false)
    };
    match (kind, family) {
        // Estimates. Family 0 is the default stream through the same
        // fan-in as a v2 stream query, so boot-recovered and pushed
        // state is visible to v1 clients too.
        (0, 0) => match ctx.default_stream() {
            Some(s) => stream_query(frame.seq, &s, 0),
            None => Response {
                ftype: FrameType::Estimate,
                seq: frame.seq,
                payload: 0.0f64.to_bits().to_le_bytes().to_vec(),
                close: false,
            },
        },
        (0, 1) => match theta_multiway_union(&ctx.store.images(SketchFamily::Theta)) {
            Ok(s) => Response {
                ftype: FrameType::Estimate,
                seq: frame.seq,
                payload: s.estimate().to_bits().to_le_bytes().to_vec(),
                close: false,
            },
            Err(e) => wire_err(e),
        },
        (0, 2) => match hll_multiway_merge(&ctx.store.images(SketchFamily::Hll)) {
            Ok(s) => Response {
                ftype: FrameType::Estimate,
                seq: frame.seq,
                payload: s.estimate().to_bits().to_le_bytes().to_vec(),
                close: false,
            },
            Err(e) => wire_err(e),
        },
        (0, 3 | 4) => Response::nack(
            frame.seq,
            NackCode::Unsupported,
            "quantiles/frequency families have no scalar estimate; query the image",
            false,
        ),
        // Images. Family 0 fans in like the estimate above.
        (1, 0) => match ctx.default_stream() {
            Some(s) => stream_query(frame.seq, &s, 1),
            None => Response::nack(
                frame.seq,
                NackCode::Internal,
                "default stream missing",
                false,
            ),
        },
        (1, 1) => match theta_multiway_union(&ctx.store.images(SketchFamily::Theta)) {
            Ok(s) => Response {
                ftype: FrameType::Image,
                seq: frame.seq,
                payload: s.to_wire_bytes().as_ref().to_vec(),
                close: false,
            },
            Err(e) => wire_err(e),
        },
        (1, 2) => match hll_multiway_merge(&ctx.store.images(SketchFamily::Hll)) {
            Ok(s) => Response {
                ftype: FrameType::Image,
                seq: frame.seq,
                payload: s.to_wire_bytes().as_ref().to_vec(),
                close: false,
            },
            Err(e) => wire_err(e),
        },
        (1, 3) => {
            match ladder_multiway_concat::<u64, _>(&ctx.store.images(SketchFamily::Quantiles)) {
                Ok(s) => Response {
                    ftype: FrameType::Image,
                    seq: frame.seq,
                    payload: s.to_wire_bytes().as_ref().to_vec(),
                    close: false,
                },
                Err(e) => wire_err(e),
            }
        }
        (1, 4) => match mg_multiway_merge::<u64, _>(&ctx.store.images(SketchFamily::Frequency)) {
            Ok(s) => Response {
                ftype: FrameType::Image,
                seq: frame.seq,
                payload: s.to_wire_bytes().as_ref().to_vec(),
                close: false,
            },
            Err(e) => wire_err(e),
        },
        _ => Response::nack(
            frame.seq,
            NackCode::Malformed,
            "unknown query kind or family",
            false,
        ),
    }
}
