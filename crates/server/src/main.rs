//! `fcds-server` binary: serve the concurrent sketch engine over TCP.
//!
//! ```text
//! fcds-server [--addr=HOST:PORT] [--workers=N] [--queue-depth=N]
//!             [--lg-k=N] [--secs=N] [--data-dir=PATH]
//!             [--snapshot-ms=N] [--fsync=always|interval|never]
//! ```
//!
//! `--data-dir` turns on the durability tier: snapshots every
//! `--snapshot-ms` (bounded loss ≤ one interval of acked ingest per
//! stream) and boot-time recovery of every valid snapshot in the
//! directory *before* the listening line is printed.
//!
//! Runs until a client sends a `Shutdown` frame (or `--secs` elapses),
//! then drains gracefully and prints the drain report.

use fcds_server::{serve, FsyncPolicy, ServerConfig};
use std::time::{Duration, Instant};

/// Accepts both `--flag=value` and `--flag value`, so the same
/// invocation style works here and on `fcds-load` (whose harness
/// parser is `=`-only). A present-but-unparseable value aborts rather
/// than silently falling back to the default.
fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let raw = args.iter().enumerate().find_map(|(i, a)| {
        if a == flag {
            args.get(i + 1).cloned()
        } else {
            a.strip_prefix(flag)
                .and_then(|rest| rest.strip_prefix('='))
                .map(|v| v.to_string())
        }
    })?;
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("fcds-server: bad value {raw:?} for {flag}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = ServerConfig::default();
    if let Some(addr) = parse_flag::<String>(&args, "--addr") {
        cfg.addr = addr;
    }
    if let Some(w) = parse_flag::<usize>(&args, "--workers") {
        cfg.ingest_workers = w;
    }
    if let Some(d) = parse_flag::<usize>(&args, "--queue-depth") {
        cfg.queue_depth = d;
    }
    if let Some(k) = parse_flag::<u8>(&args, "--lg-k") {
        cfg.lg_k = k;
    }
    if let Some(dir) = parse_flag::<String>(&args, "--data-dir") {
        cfg.data_dir = Some(dir);
    }
    if let Some(ms) = parse_flag::<u64>(&args, "--snapshot-ms") {
        cfg.snapshot_interval = Duration::from_millis(ms.max(1));
    }
    if let Some(policy) = parse_flag::<FsyncPolicy>(&args, "--fsync") {
        cfg.fsync_policy = policy;
    }
    let secs = parse_flag::<u64>(&args, "--secs");

    let handle = match serve(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("fcds-server: startup failed: {e}");
            std::process::exit(1);
        }
    };
    if let Some(outcome) = handle.recovery_outcome() {
        println!(
            "fcds-server: recovered {} stream(s), quarantined {} record(s), skipped {}",
            outcome.recovered, outcome.quarantined, outcome.skipped
        );
        for (name, err) in &outcome.failures {
            eprintln!("fcds-server: quarantined {name}: {err}");
        }
    }
    println!("fcds-server listening on {}", handle.local_addr());

    let deadline = secs.map(|s| Instant::now() + Duration::from_secs(s));
    loop {
        if handle.drain_requested() {
            println!("fcds-server: drain requested by client");
            break;
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                println!("fcds-server: --secs elapsed");
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let report = handle.shutdown();
    println!(
        "fcds-server: drained (workers flushed {}, flush-failed {}, panicked {}, leaked {})",
        report.workers_flushed,
        report.workers_flush_failed,
        report.workers_panicked,
        report.leaked_threads
    );
    println!(
        "fcds-server: {} items in {} batches, {} sheds, {} nacks, final estimate {:.1}",
        report.stats.ingest_items,
        report.stats.ingest_batches,
        report.stats.sheds,
        report.stats.nacks,
        report.final_estimate
    );
    if report.leaked_threads > 0 {
        std::process::exit(1);
    }
}
