//! The length-prefixed frame protocol spoken on every `fcds-server`
//! connection.
//!
//! A frame is a fixed 16-byte header followed by `payload_len` payload
//! bytes. All integers are little-endian, matching the sketch wire
//! envelope the payloads carry:
//!
//! | offset | size | field         | meaning                                   |
//! |-------:|-----:|---------------|-------------------------------------------|
//! | 0      | 4    | `magic`       | `"FCF1"` (fcds frame v1)                  |
//! | 4      | 1    | `type`        | frame type code (below)                   |
//! | 5      | 1    | `flags`       | must be 0 in v1                           |
//! | 6      | 2    | `seq`         | client sequence number, echoed in replies |
//! | 8      | 4    | `payload_len` | payload bytes following the header        |
//! | 12     | 4    | `checksum`    | FNV-1a 32 over the payload                |
//!
//! The checksum is not cryptographic — it exists so a bit-flipped
//! payload (a real fault class for long-lived TCP streams through
//! middleboxes, and one the fault-injection harness synthesises) turns
//! into a typed NACK instead of a garbage merge. Header corruption is
//! caught by the magic/type/flags checks; payload corruption by the
//! checksum; declared-length abuse by the server's configured cap
//! *before* any buffer is sized from it.
//!
//! # FCF1 v2: stream-addressed frames
//!
//! v2 keeps the 16-byte header byte-for-byte and assigns the first two
//! `flags` bits; a v1 peer (flags always 0) interoperates unchanged.
//!
//! * [`FLAG_STREAM`] (`0x01`) — legal only on `Ingest`, `Merge` and
//!   `Query`. The payload then starts with a **stream prefix**:
//!
//!   | offset | size   | field    | meaning                              |
//!   |-------:|-------:|----------|--------------------------------------|
//!   | 0      | 1      | `family` | [`SketchFamily`] code (1–4)          |
//!   | 1      | 1      | `klen`   | key length, 1..=[`MAX_STREAM_KEY`]   |
//!   | 2      | `klen` | `key`    | opaque stream key bytes              |
//!   | 2+klen | 0 or 8 | `source` | replica id (u64 LE), iff `REPLACE`   |
//!
//!   followed by the ordinary v1 body (ingest items, one wire
//!   envelope, or the 2-byte query selector with `family` ignored in
//!   favour of the prefix).
//! * [`FLAG_REPLACE`] (`0x02`) — legal only together with `STREAM` and
//!   only on `Merge`: the envelope *replaces* the stream's slot for
//!   `source` instead of accumulating, making replica pushes idempotent
//!   for the non-idempotent families (Quantiles concat, Misra–Gries
//!   counter addition).
//!
//! Any other flag bit, or a defined bit on the wrong frame type, is
//! rejected as [`HeaderError::BadFlags`] before the payload is read.

use fcds_sketches::wire::SketchFamily;

/// `"FCF1"` little-endian: fcds frame protocol, version 1.
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"FCF1");

/// Fixed frame header length in bytes.
pub const FRAME_HEADER_LEN: usize = 16;

/// v2 flag: the payload starts with a stream prefix
/// (`[family][klen][key]`). Legal on `Ingest`, `Merge` and `Query`.
pub const FLAG_STREAM: u8 = 0x01;

/// v2 flag: replace-by-source merge. Legal only with [`FLAG_STREAM`] on
/// `Merge`; the prefix then carries a trailing `u64` replica source id.
pub const FLAG_REPLACE: u8 = 0x02;

/// Every flag bit any FCF1 version defines; the rest must be zero.
pub const FLAGS_MASK: u8 = FLAG_STREAM | FLAG_REPLACE;

/// Longest stream key the prefix codec accepts, in bytes. Small on
/// purpose: keys are routing labels, not payloads, and the bound keeps
/// hostile `klen` bytes from claiming more than the prefix can hold.
pub const MAX_STREAM_KEY: usize = 64;

/// Frame type codes. Client→server types have the high bit clear,
/// server→client types have it set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Liveness probe; answered with [`FrameType::Pong`].
    Ping = 0x01,
    /// Batch ingest: payload is `n × u64` items (LE), `n ≥ 0`,
    /// `payload_len % 8 == 0`. Answered with Ack or a shed Nack.
    Ingest = 0x02,
    /// Merge an fcds wire envelope (any family) into the server's merge
    /// store. Payload is exactly one envelope.
    Merge = 0x03,
    /// Query: payload is `[kind: u8, family: u8]`. `kind` 0 = estimate
    /// (answered with [`FrameType::Estimate`]), 1 = wire image (answered
    /// with [`FrameType::Image`]). `family` 0 = the live Θ engine,
    /// 1–4 = the merge store for that `SketchFamily` code.
    Query = 0x04,
    /// Ask the server to start draining (answered with Ack; ingest and
    /// merge frames are NACKed with `Draining` from then on).
    Shutdown = 0x06,

    /// Reply to [`FrameType::Ping`].
    Pong = 0x81,
    /// Positive acknowledgement (empty payload).
    Ack = 0x82,
    /// Typed negative acknowledgement: payload is
    /// `[code: u16 LE][detail: UTF-8]`. Never silent — every rejected
    /// request produces one (or the connection is closed, for framing
    /// that cannot be resynchronised).
    Nack = 0x83,
    /// Estimate reply: payload is one `f64` (LE bits).
    Estimate = 0x84,
    /// Wire-image reply: payload is one fcds wire envelope.
    Image = 0x85,
}

impl FrameType {
    /// Decodes a type code.
    pub fn from_code(code: u8) -> Option<FrameType> {
        Some(match code {
            0x01 => FrameType::Ping,
            0x02 => FrameType::Ingest,
            0x03 => FrameType::Merge,
            0x04 => FrameType::Query,
            0x06 => FrameType::Shutdown,
            0x81 => FrameType::Pong,
            0x82 => FrameType::Ack,
            0x83 => FrameType::Nack,
            0x84 => FrameType::Estimate,
            0x85 => FrameType::Image,
            _ => return None,
        })
    }
}

/// Machine-readable NACK reason codes (the error taxonomy the load
/// harness aggregates by). The u16 goes on the wire; the enum names the
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum NackCode {
    /// Unparseable or protocol-violating frame (bad magic, unknown type,
    /// non-zero flags, malformed payload). Bad magic closes the
    /// connection after the NACK — the stream cannot be resynchronised;
    /// the other cases keep it open.
    Malformed = 1,
    /// Declared payload length exceeds the server's cap. The connection
    /// is closed: the oversized payload cannot be safely skipped.
    PayloadTooLarge = 2,
    /// The payload failed sketch-wire validation (`WireError`); detail
    /// carries the display string. Connection stays open.
    Wire = 3,
    /// Load shed: the target ingest queue is full. The client should
    /// back off and retry.
    Overload = 4,
    /// The target backend's circuit breaker is open; retry after its
    /// cooldown.
    BreakerOpen = 5,
    /// The server is draining; no new ingest or merge work is accepted.
    Draining = 6,
    /// The request is well-formed but the server cannot serve it (e.g.
    /// an estimate query against a family that has no estimator).
    Unsupported = 7,
    /// Internal failure (e.g. the ingest backend died); detail says why.
    Internal = 8,
    /// Payload checksum mismatch — the frame was corrupted in flight.
    /// Connection stays open (framing itself was intact).
    Checksum = 9,
    /// The peer blew the mid-frame read deadline. Sent on a best-effort
    /// basis before the connection is closed.
    Timeout = 10,
    /// A v2 query addressed a stream key the registry does not hold.
    /// Queries never create streams — only ingest and merge do.
    UnknownStream = 11,
    /// A v2 frame's declared family disagrees with the family the
    /// stream was created with. The frame is rejected; the stream is
    /// untouched.
    FamilyMismatch = 12,
}

impl NackCode {
    /// Decodes a wire code.
    pub fn from_code(code: u16) -> Option<NackCode> {
        Some(match code {
            1 => NackCode::Malformed,
            2 => NackCode::PayloadTooLarge,
            3 => NackCode::Wire,
            4 => NackCode::Overload,
            5 => NackCode::BreakerOpen,
            6 => NackCode::Draining,
            7 => NackCode::Unsupported,
            8 => NackCode::Internal,
            9 => NackCode::Checksum,
            10 => NackCode::Timeout,
            11 => NackCode::UnknownStream,
            12 => NackCode::FamilyMismatch,
            _ => return None,
        })
    }
}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame type.
    pub ftype: FrameType,
    /// Validated flag bits ([`FLAG_STREAM`] / [`FLAG_REPLACE`]; 0 on
    /// every v1 frame).
    pub flags: u8,
    /// Client-chosen sequence number, echoed verbatim in replies.
    pub seq: u16,
    /// The payload bytes (already checksum-verified on decode).
    pub payload: Vec<u8>,
}

/// Why a frame header or payload was rejected. Each variant maps to a
/// documented [`NackCode`] and connection disposition (see
/// [`HeaderError::nack_code`] / [`HeaderError::closes_connection`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeaderError {
    /// The magic bytes are wrong — the stream is not speaking this
    /// protocol (or has desynchronised beyond repair).
    BadMagic {
        /// The four bytes found where the magic belongs.
        found: u32,
    },
    /// Unknown frame type code, or a server→client code sent by a
    /// client.
    UnknownType {
        /// The offending type code.
        found: u8,
    },
    /// Undefined flag bits, or a defined bit on a frame type that does
    /// not admit it (`STREAM` off `Ingest`/`Merge`/`Query`, `REPLACE`
    /// without `STREAM` or off `Merge`, any flag on a reply).
    BadFlags {
        /// The offending flags byte.
        found: u8,
    },
    /// Declared payload length exceeds the receiver's cap.
    PayloadTooLarge {
        /// The declared payload length.
        declared: u32,
        /// The receiver's cap.
        cap: u32,
    },
    /// The payload's FNV-1a 32 does not match the header.
    ChecksumMismatch {
        /// Checksum the header declared.
        declared: u32,
        /// Checksum computed over the received payload.
        computed: u32,
    },
}

impl HeaderError {
    /// The NACK code this error is reported with.
    pub fn nack_code(&self) -> NackCode {
        match self {
            HeaderError::BadMagic { .. }
            | HeaderError::UnknownType { .. }
            | HeaderError::BadFlags { .. } => NackCode::Malformed,
            HeaderError::PayloadTooLarge { .. } => NackCode::PayloadTooLarge,
            HeaderError::ChecksumMismatch { .. } => NackCode::Checksum,
        }
    }

    /// Whether the connection must be closed after NACKing: true when
    /// the byte stream cannot be resynchronised (wrong magic — we are
    /// lost) or cannot be safely skipped (oversized payload). Unknown
    /// types, bad flags and checksum mismatches keep the connection: the
    /// framing itself was intact, so the next frame boundary is known.
    pub fn closes_connection(&self) -> bool {
        matches!(
            self,
            HeaderError::BadMagic { .. } | HeaderError::PayloadTooLarge { .. }
        )
    }
}

impl std::fmt::Display for HeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeaderError::BadMagic { found } => {
                write!(f, "bad frame magic {found:#010x} (want \"FCF1\")")
            }
            HeaderError::UnknownType { found } => write!(f, "unknown frame type {found:#04x}"),
            HeaderError::BadFlags { found } => write!(f, "unsupported frame flags {found:#04x}"),
            HeaderError::PayloadTooLarge { declared, cap } => {
                write!(f, "declared payload {declared} exceeds cap {cap}")
            }
            HeaderError::ChecksumMismatch { declared, computed } => write!(
                f,
                "payload checksum mismatch: header says {declared:#010x}, payload is {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for HeaderError {}

/// The validated fields of a frame header, before the payload has been
/// read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedHeader {
    /// The frame type.
    pub ftype: FrameType,
    /// Validated flag bits (0 on every v1 frame).
    pub flags: u8,
    /// The client sequence number.
    pub seq: u16,
    /// Declared payload length (≤ the cap passed to
    /// [`parse_header`]).
    pub payload_len: u32,
    /// Declared payload checksum, verified by [`check_payload`].
    pub checksum: u32,
}

/// FNV-1a 32-bit over `data`.
pub fn fnv1a32(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Parses and validates a 16-byte frame header against `max_payload`,
/// rejecting declared lengths above it before anything is buffered
/// (mirroring `fcds_sketches::wire::peek`'s cap, one protocol layer up).
///
/// `client_side`: when true, only client→server frame types are
/// accepted (a server rejecting server-codes from clients); when false,
/// only server→client types (a client library validating replies).
///
/// # Errors
///
/// See [`HeaderError`] for the taxonomy; every variant maps to a
/// documented NACK code and connection disposition.
pub fn parse_header(
    bytes: &[u8; FRAME_HEADER_LEN],
    max_payload: u32,
    client_side: bool,
) -> Result<ParsedHeader, HeaderError> {
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != FRAME_MAGIC {
        return Err(HeaderError::BadMagic { found: magic });
    }
    let type_code = bytes[4];
    let ftype = FrameType::from_code(type_code)
        .filter(|t| ((*t as u8) & 0x80 == 0) == client_side)
        .ok_or(HeaderError::UnknownType { found: type_code })?;
    let flags = bytes[5];
    if flags & !FLAGS_MASK != 0 {
        return Err(HeaderError::BadFlags { found: flags });
    }
    let stream_ok = matches!(
        ftype,
        FrameType::Ingest | FrameType::Merge | FrameType::Query
    );
    if flags & FLAG_STREAM != 0 && !stream_ok {
        return Err(HeaderError::BadFlags { found: flags });
    }
    if flags & FLAG_REPLACE != 0 && (flags & FLAG_STREAM == 0 || ftype != FrameType::Merge) {
        return Err(HeaderError::BadFlags { found: flags });
    }
    let seq = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    let payload_len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if payload_len > max_payload {
        return Err(HeaderError::PayloadTooLarge {
            declared: payload_len,
            cap: max_payload,
        });
    }
    let checksum = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    Ok(ParsedHeader {
        ftype,
        flags,
        seq,
        payload_len,
        checksum,
    })
}

/// Verifies a received payload against its header checksum.
///
/// # Errors
///
/// [`HeaderError::ChecksumMismatch`] when the payload was corrupted in
/// flight.
pub fn check_payload(header: &ParsedHeader, payload: &[u8]) -> Result<(), HeaderError> {
    debug_assert_eq!(payload.len() as u32, header.payload_len);
    let computed = fnv1a32(payload);
    if computed != header.checksum {
        return Err(HeaderError::ChecksumMismatch {
            declared: header.checksum,
            computed,
        });
    }
    Ok(())
}

/// Encodes a v1 frame (header + payload, flags 0) into one buffer
/// ready to write.
pub fn encode_frame(ftype: FrameType, seq: u16, payload: &[u8]) -> Vec<u8> {
    encode_frame_flags(ftype, 0, seq, payload)
}

/// Encodes a frame with explicit flag bits. The caller is responsible
/// for pairing [`FLAG_STREAM`]/[`FLAG_REPLACE`] with a payload that
/// actually starts with the matching stream prefix
/// ([`encode_stream_prefix`]).
pub fn encode_frame_flags(ftype: FrameType, flags: u8, seq: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.push(ftype as u8);
    out.push(flags);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// A decoded v2 stream prefix (see the module docs for the byte
/// layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPrefix<'a> {
    /// The sketch family the sender declares for the stream.
    pub family: SketchFamily,
    /// The opaque stream key (1..=[`MAX_STREAM_KEY`] bytes).
    pub key: &'a [u8],
    /// Replica source id; present iff the frame carried
    /// [`FLAG_REPLACE`].
    pub source: Option<u64>,
}

/// Why a v2 stream prefix was rejected. All variants NACK as
/// [`NackCode::Malformed`] and keep the connection open (the frame
/// boundary is known — only the payload's leading bytes are bad).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamPrefixError {
    /// The payload ends before the prefix it declares is complete.
    Truncated,
    /// `klen` is zero — streams must have a non-empty key.
    EmptyKey,
    /// `klen` exceeds [`MAX_STREAM_KEY`].
    KeyTooLong {
        /// The declared key length.
        len: usize,
    },
    /// The family byte is not an assigned [`SketchFamily`] code.
    BadFamily {
        /// The offending byte.
        found: u8,
    },
}

impl std::fmt::Display for StreamPrefixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamPrefixError::Truncated => write!(f, "payload truncates the stream prefix"),
            StreamPrefixError::EmptyKey => write!(f, "stream key must not be empty"),
            StreamPrefixError::KeyTooLong { len } => {
                write!(f, "stream key of {len} bytes exceeds max {MAX_STREAM_KEY}")
            }
            StreamPrefixError::BadFamily { found } => {
                write!(f, "unassigned sketch family code {found:#04x}")
            }
        }
    }
}

impl std::error::Error for StreamPrefixError {}

/// Prepends a stream prefix to `body`, producing a v2 payload. Pass the
/// result to [`encode_frame_flags`] with [`FLAG_STREAM`] (and
/// [`FLAG_REPLACE`] iff `source` is `Some`).
///
/// # Panics
///
/// If `key` is empty or longer than [`MAX_STREAM_KEY`] — sender-side
/// misuse, not a wire condition.
pub fn encode_stream_prefix(
    family: SketchFamily,
    key: &[u8],
    source: Option<u64>,
    body: &[u8],
) -> Vec<u8> {
    assert!(
        !key.is_empty() && key.len() <= MAX_STREAM_KEY,
        "stream key must be 1..={MAX_STREAM_KEY} bytes, got {}",
        key.len()
    );
    let mut out = Vec::with_capacity(2 + key.len() + 8 + body.len());
    out.push(family.code());
    out.push(key.len() as u8);
    out.extend_from_slice(key);
    if let Some(id) = source {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out.extend_from_slice(body);
    out
}

/// Splits a v2 payload into its stream prefix and the v1-shaped body
/// that follows. `replace` mirrors the frame's [`FLAG_REPLACE`] bit and
/// decides whether the trailing `source` id is expected.
///
/// # Errors
///
/// See [`StreamPrefixError`]; every variant is a `Malformed` NACK with
/// the connection kept open.
pub fn split_stream_prefix(
    payload: &[u8],
    replace: bool,
) -> Result<(StreamPrefix<'_>, &[u8]), StreamPrefixError> {
    let [family_code, klen, rest @ ..] = payload else {
        return Err(StreamPrefixError::Truncated);
    };
    let family = SketchFamily::from_code(*family_code).ok_or(StreamPrefixError::BadFamily {
        found: *family_code,
    })?;
    let klen = *klen as usize;
    if klen == 0 {
        return Err(StreamPrefixError::EmptyKey);
    }
    if klen > MAX_STREAM_KEY {
        return Err(StreamPrefixError::KeyTooLong { len: klen });
    }
    if rest.len() < klen {
        return Err(StreamPrefixError::Truncated);
    }
    let (key, rest) = rest.split_at(klen);
    let (source, body) = if replace {
        if rest.len() < 8 {
            return Err(StreamPrefixError::Truncated);
        }
        let (id, body) = rest.split_at(8);
        (
            Some(u64::from_le_bytes(id.try_into().expect("8 bytes"))),
            body,
        )
    } else {
        (None, rest)
    };
    Ok((
        StreamPrefix {
            family,
            key,
            source,
        },
        body,
    ))
}

/// Encodes a NACK payload: `[code: u16 LE][detail: UTF-8]`.
pub fn encode_nack_payload(code: NackCode, detail: &str) -> Vec<u8> {
    let mut p = Vec::with_capacity(2 + detail.len());
    p.extend_from_slice(&(code as u16).to_le_bytes());
    p.extend_from_slice(detail.as_bytes());
    p
}

/// Decodes a NACK payload into `(code, detail)`.
pub fn decode_nack_payload(payload: &[u8]) -> Option<(NackCode, String)> {
    if payload.len() < 2 {
        return None;
    }
    let code = u16::from_le_bytes(payload[0..2].try_into().expect("2 bytes"));
    let detail = String::from_utf8_lossy(&payload[2..]).into_owned();
    Some((NackCode::from_code(code)?, detail))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_header(ftype: FrameType, seq: u16, payload: &[u8]) -> ParsedHeader {
        let bytes = encode_frame(ftype, seq, payload);
        let header: [u8; FRAME_HEADER_LEN] = bytes[..FRAME_HEADER_LEN].try_into().unwrap();
        let client_side = (ftype as u8) & 0x80 == 0;
        let parsed = parse_header(&header, u32::MAX, client_side).unwrap();
        check_payload(&parsed, &bytes[FRAME_HEADER_LEN..]).unwrap();
        parsed
    }

    #[test]
    fn frame_roundtrip_preserves_fields() {
        for (ftype, seq, payload) in [
            (FrameType::Ping, 0u16, &b""[..]),
            (
                FrameType::Ingest,
                7,
                &b"\x01\x00\x00\x00\x00\x00\x00\x00"[..],
            ),
            (FrameType::Nack, u16::MAX, &b"\x04\x00shed"[..]),
        ] {
            let parsed = roundtrip_header(ftype, seq, payload);
            assert_eq!(parsed.ftype, ftype);
            assert_eq!(parsed.seq, seq);
            assert_eq!(parsed.payload_len as usize, payload.len());
        }
    }

    #[test]
    fn direction_check_rejects_wrong_side() {
        let bytes = encode_frame(FrameType::Ack, 1, b"");
        let header: [u8; FRAME_HEADER_LEN] = bytes[..FRAME_HEADER_LEN].try_into().unwrap();
        // A server must not accept a server→client code from a client.
        assert_eq!(
            parse_header(&header, u32::MAX, true),
            Err(HeaderError::UnknownType {
                found: FrameType::Ack as u8
            })
        );
        // A client accepts it fine.
        assert!(parse_header(&header, u32::MAX, false).is_ok());
    }

    #[test]
    fn cap_rejects_oversized_declarations() {
        let bytes = encode_frame(FrameType::Ingest, 0, &[0u8; 64]);
        let header: [u8; FRAME_HEADER_LEN] = bytes[..FRAME_HEADER_LEN].try_into().unwrap();
        assert!(parse_header(&header, 64, true).is_ok());
        let err = parse_header(&header, 63, true).unwrap_err();
        assert_eq!(
            err,
            HeaderError::PayloadTooLarge {
                declared: 64,
                cap: 63
            }
        );
        assert!(err.closes_connection());
        assert_eq!(err.nack_code(), NackCode::PayloadTooLarge);
    }

    #[test]
    fn checksum_catches_single_bit_flips() {
        let payload = b"the payload under test".to_vec();
        let bytes = encode_frame(FrameType::Merge, 3, &payload);
        let header: [u8; FRAME_HEADER_LEN] = bytes[..FRAME_HEADER_LEN].try_into().unwrap();
        let parsed = parse_header(&header, u32::MAX, true).unwrap();
        for bit in 0..payload.len() * 8 {
            let mut corrupted = payload.clone();
            corrupted[bit / 8] ^= 1 << (bit % 8);
            let err = check_payload(&parsed, &corrupted).unwrap_err();
            assert_eq!(err.nack_code(), NackCode::Checksum);
            assert!(!err.closes_connection());
        }
        check_payload(&parsed, &payload).unwrap();
    }

    #[test]
    fn nack_payload_roundtrip() {
        for code in [
            NackCode::Malformed,
            NackCode::PayloadTooLarge,
            NackCode::Wire,
            NackCode::Overload,
            NackCode::BreakerOpen,
            NackCode::Draining,
            NackCode::Unsupported,
            NackCode::Internal,
            NackCode::Checksum,
            NackCode::Timeout,
        ] {
            let p = encode_nack_payload(code, "detail text");
            let (got, detail) = decode_nack_payload(&p).unwrap();
            assert_eq!(got, code);
            assert_eq!(detail, "detail text");
        }
        assert_eq!(decode_nack_payload(&[1]), None);
        assert_eq!(decode_nack_payload(&[0xFF, 0xFF]), None);
    }

    #[test]
    fn stream_nack_codes_roundtrip() {
        for code in [NackCode::UnknownStream, NackCode::FamilyMismatch] {
            let p = encode_nack_payload(code, "why");
            let (got, _) = decode_nack_payload(&p).unwrap();
            assert_eq!(got, code);
        }
        assert_eq!(NackCode::from_code(11), Some(NackCode::UnknownStream));
        assert_eq!(NackCode::from_code(12), Some(NackCode::FamilyMismatch));
        assert_eq!(NackCode::from_code(13), None);
    }

    fn parse(bytes: &[u8]) -> Result<ParsedHeader, HeaderError> {
        let header: [u8; FRAME_HEADER_LEN] = bytes[..FRAME_HEADER_LEN].try_into().unwrap();
        parse_header(&header, u32::MAX, true)
    }

    #[test]
    fn v2_flags_accepted_where_defined() {
        for ftype in [FrameType::Ingest, FrameType::Merge, FrameType::Query] {
            let parsed = parse(&encode_frame_flags(ftype, FLAG_STREAM, 9, b"x")).unwrap();
            assert_eq!(parsed.flags, FLAG_STREAM);
            assert_eq!(parsed.seq, 9);
        }
        let both = FLAG_STREAM | FLAG_REPLACE;
        let parsed = parse(&encode_frame_flags(FrameType::Merge, both, 0, b"")).unwrap();
        assert_eq!(parsed.flags, both);
    }

    #[test]
    fn v2_flags_rejected_where_undefined() {
        // Undefined bits.
        for flags in [0x04u8, 0x80, FLAG_STREAM | 0x10] {
            let err = parse(&encode_frame_flags(FrameType::Ingest, flags, 0, b"")).unwrap_err();
            assert_eq!(err, HeaderError::BadFlags { found: flags });
            assert!(!err.closes_connection());
        }
        // STREAM off the three frame types that admit it.
        for ftype in [FrameType::Ping, FrameType::Shutdown] {
            let err = parse(&encode_frame_flags(ftype, FLAG_STREAM, 0, b"")).unwrap_err();
            assert_eq!(err, HeaderError::BadFlags { found: FLAG_STREAM });
        }
        // REPLACE without STREAM, and REPLACE off Merge.
        let err = parse(&encode_frame_flags(FrameType::Merge, FLAG_REPLACE, 0, b"")).unwrap_err();
        assert_eq!(
            err,
            HeaderError::BadFlags {
                found: FLAG_REPLACE
            }
        );
        let both = FLAG_STREAM | FLAG_REPLACE;
        for ftype in [FrameType::Ingest, FrameType::Query] {
            let err = parse(&encode_frame_flags(ftype, both, 0, b"")).unwrap_err();
            assert_eq!(err, HeaderError::BadFlags { found: both });
        }
    }

    #[test]
    fn v1_frames_still_parse_with_zero_flags() {
        let parsed = parse(&encode_frame(FrameType::Ingest, 3, b"12345678")).unwrap();
        assert_eq!(parsed.flags, 0);
    }

    #[test]
    fn stream_prefix_roundtrip() {
        let body = [0xABu8; 24];
        let payload = encode_stream_prefix(SketchFamily::Quantiles, b"clicks/eu", None, &body);
        let (prefix, rest) = split_stream_prefix(&payload, false).unwrap();
        assert_eq!(prefix.family, SketchFamily::Quantiles);
        assert_eq!(prefix.key, b"clicks/eu");
        assert_eq!(prefix.source, None);
        assert_eq!(rest, &body);

        let payload = encode_stream_prefix(SketchFamily::Hll, b"k", Some(0xDEAD_BEEF), &body);
        let (prefix, rest) = split_stream_prefix(&payload, true).unwrap();
        assert_eq!(prefix.family, SketchFamily::Hll);
        assert_eq!(prefix.key, b"k");
        assert_eq!(prefix.source, Some(0xDEAD_BEEF));
        assert_eq!(rest, &body);
    }

    #[test]
    fn hostile_stream_prefixes_are_typed_errors() {
        // Truncated: empty payload, then a klen that overruns.
        assert_eq!(
            split_stream_prefix(b"", false),
            Err(StreamPrefixError::Truncated)
        );
        assert_eq!(
            split_stream_prefix(&[1, 10, b'a', b'b'], false),
            Err(StreamPrefixError::Truncated)
        );
        // Missing source id under REPLACE.
        assert_eq!(
            split_stream_prefix(&[1, 1, b'a', 0, 0, 0], true),
            Err(StreamPrefixError::Truncated)
        );
        // Empty key.
        assert_eq!(
            split_stream_prefix(&[1, 0], false),
            Err(StreamPrefixError::EmptyKey)
        );
        // Oversized key: klen claims more than MAX_STREAM_KEY.
        let mut oversized = vec![1u8, (MAX_STREAM_KEY + 1) as u8];
        oversized.extend_from_slice(&[b'x'; MAX_STREAM_KEY + 1]);
        assert_eq!(
            split_stream_prefix(&oversized, false),
            Err(StreamPrefixError::KeyTooLong {
                len: MAX_STREAM_KEY + 1
            })
        );
        // Unassigned family code.
        assert_eq!(
            split_stream_prefix(&[9, 1, b'a'], false),
            Err(StreamPrefixError::BadFamily { found: 9 })
        );
    }
}
