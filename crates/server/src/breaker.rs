//! Per-backend circuit breaker: closed → open → half-open.
//!
//! Each ingest backend (worker) gets one breaker. While *closed*,
//! requests flow and consecutive failures are counted; at the threshold
//! the breaker *opens* and requests are rejected outright (a
//! `BreakerOpen` NACK — cheaper for everyone than queueing against a
//! backend that keeps failing). After the cooldown one *half-open*
//! probe is admitted: success re-closes the breaker, failure re-opens
//! it for another cooldown. The classic pattern, sized for a handful of
//! backends — one mutex per breaker, taken once per request.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are counted.
    Closed,
    /// Requests are rejected until the cooldown elapses.
    Open,
    /// One probe request is in flight; its outcome decides the next
    /// state.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

/// A closed/open/half-open circuit breaker guarding one backend.
#[derive(Debug)]
pub struct CircuitBreaker {
    inner: Mutex<BreakerInner>,
    threshold: u32,
    cooldown: Duration,
}

impl CircuitBreaker {
    /// Creates a closed breaker that opens after `threshold` consecutive
    /// failures and admits a half-open probe after `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        assert!(threshold > 0, "a zero threshold would never admit anything");
        CircuitBreaker {
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
            }),
            threshold,
            cooldown,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        // A panic while holding this mutex cannot leave partial state
        // (every update is a plain field store), so a poisoned lock is
        // safe to keep using.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether a request may proceed. In the open state this is where
    /// the cooldown expiry transitions to half-open (admitting exactly
    /// one probe).
    pub fn allow(&self) -> bool {
        let mut g = self.lock();
        match g.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let expired = g
                    .opened_at
                    .map(|t| t.elapsed() >= self.cooldown)
                    .unwrap_or(true);
                if expired {
                    g.state = BreakerState::HalfOpen;
                    true // this caller is the probe
                } else {
                    false
                }
            }
            // A probe is already in flight; reject until it reports.
            BreakerState::HalfOpen => false,
        }
    }

    /// Records a successful request: re-closes the breaker and clears
    /// the failure streak.
    pub fn record_success(&self) {
        let mut g = self.lock();
        g.state = BreakerState::Closed;
        g.consecutive_failures = 0;
        g.opened_at = None;
    }

    /// Records a failed request. A half-open probe failure re-opens
    /// immediately; in the closed state the breaker opens once the
    /// consecutive-failure streak reaches the threshold.
    pub fn record_failure(&self) {
        let mut g = self.lock();
        g.consecutive_failures = g.consecutive_failures.saturating_add(1);
        let open_now = match g.state {
            BreakerState::HalfOpen | BreakerState::Open => true,
            BreakerState::Closed => g.consecutive_failures >= self.threshold,
        };
        if open_now {
            g.state = BreakerState::Open;
            g.opened_at = Some(Instant::now());
        }
    }

    /// Forces the breaker open (used when a backend is known dead, e.g.
    /// its worker thread panicked — no point probing it).
    pub fn trip(&self) {
        let mut g = self.lock();
        g.state = BreakerState::Open;
        g.consecutive_failures = g.consecutive_failures.max(self.threshold);
        g.opened_at = Some(Instant::now());
    }

    /// The current state (for stats/debugging; racy by nature).
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_until_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(3, Duration::from_secs(60));
        assert!(b.allow());
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
    }

    #[test]
    fn success_resets_the_streak() {
        let b = CircuitBreaker::new(2, Duration::from_secs(60));
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn half_open_probe_admits_exactly_one_and_its_outcome_decides() {
        let b = CircuitBreaker::new(1, Duration::from_millis(0));
        b.record_failure();
        // Cooldown of zero: the next allow() is the half-open probe.
        assert!(b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Concurrent requests are rejected while the probe is in flight.
        assert!(!b.allow());
        // Probe fails → re-open; a later probe succeeds → closed.
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
    }

    #[test]
    fn open_waits_out_the_cooldown() {
        let b = CircuitBreaker::new(1, Duration::from_secs(600));
        b.record_failure();
        assert!(!b.allow(), "cooldown must gate the half-open probe");
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn trip_opens_immediately() {
        let b = CircuitBreaker::new(100, Duration::from_secs(600));
        b.trip();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
    }
}
