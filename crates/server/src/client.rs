//! A small synchronous client for the frame protocol.
//!
//! Shared by the loopback tests, the hostile-frame suite (via
//! [`Client::send_raw`]) and the `fcds-load` harness — one
//! implementation of framing on the client side, so a protocol change
//! breaks loudly in one place.

use crate::frame::{
    check_payload, decode_nack_payload, encode_frame, encode_frame_flags, encode_stream_prefix,
    parse_header, FrameType, NackCode, FLAG_REPLACE, FLAG_STREAM, FRAME_HEADER_LEN,
};
use fcds_sketches::wire::SketchFamily;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A decoded server reply, one level above raw frames: NACK payloads
/// are parsed into their typed code, estimates into `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// [`FrameType::Pong`].
    Pong {
        /// Echoed sequence number.
        seq: u16,
    },
    /// [`FrameType::Ack`].
    Ack {
        /// Echoed sequence number.
        seq: u16,
    },
    /// [`FrameType::Nack`], payload decoded.
    Nack {
        /// Echoed sequence number.
        seq: u16,
        /// Typed rejection reason.
        code: NackCode,
        /// Human-readable detail from the server.
        detail: String,
    },
    /// [`FrameType::Estimate`].
    Estimate {
        /// Echoed sequence number.
        seq: u16,
        /// The estimate.
        value: f64,
    },
    /// [`FrameType::Image`]: one fcds wire envelope.
    Image {
        /// Echoed sequence number.
        seq: u16,
        /// The wire image bytes.
        bytes: Vec<u8>,
    },
}

impl Reply {
    /// The echoed sequence number.
    pub fn seq(&self) -> u16 {
        match self {
            Reply::Pong { seq }
            | Reply::Ack { seq }
            | Reply::Nack { seq, .. }
            | Reply::Estimate { seq, .. }
            | Reply::Image { seq, .. } => *seq,
        }
    }

    /// The NACK code, if this is a NACK.
    pub fn nack_code(&self) -> Option<NackCode> {
        match self {
            Reply::Nack { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// A blocking frame-protocol client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    next_seq: u16,
    /// Reply payloads above this are refused (mirror of the server cap).
    max_reply_payload: u32,
}

impl Client {
    /// Connects and applies `timeout` to reads and writes.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure I/O errors.
    pub fn connect<A: ToSocketAddrs>(addr: A, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            next_seq: 1,
            max_reply_payload: 64 << 20,
        })
    }

    fn seq(&mut self) -> u16 {
        let s = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        s
    }

    /// Writes raw bytes to the stream, bypassing the frame encoder —
    /// the hostile-frame tests and the fault-injection proxy build
    /// deliberately broken frames with this.
    ///
    /// # Errors
    ///
    /// Propagates write I/O errors.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Sends one well-formed frame.
    ///
    /// # Errors
    ///
    /// Propagates write I/O errors.
    pub fn send_frame(&mut self, ftype: FrameType, payload: &[u8]) -> io::Result<u16> {
        let seq = self.seq();
        self.stream.write_all(&encode_frame(ftype, seq, payload))?;
        Ok(seq)
    }

    /// Sends one well-formed frame with explicit v2 flag bits.
    ///
    /// # Errors
    ///
    /// Propagates write I/O errors.
    pub fn send_frame_flags(
        &mut self,
        ftype: FrameType,
        flags: u8,
        payload: &[u8],
    ) -> io::Result<u16> {
        let seq = self.seq();
        self.stream
            .write_all(&encode_frame_flags(ftype, flags, seq, payload))?;
        Ok(seq)
    }

    /// Reads and validates one reply frame.
    ///
    /// # Errors
    ///
    /// I/O errors (including timeouts, surfaced as `WouldBlock`/
    /// `TimedOut`), `UnexpectedEof` if the server closed, or
    /// `InvalidData` for protocol violations in the reply.
    pub fn read_reply(&mut self) -> io::Result<Reply> {
        let mut header = [0u8; FRAME_HEADER_LEN];
        self.stream.read_exact(&mut header)?;
        let parsed = parse_header(&header, self.max_reply_payload, false)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let mut payload = vec![0u8; parsed.payload_len as usize];
        self.stream.read_exact(&mut payload)?;
        check_payload(&parsed, &payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let seq = parsed.seq;
        Ok(match parsed.ftype {
            FrameType::Pong => Reply::Pong { seq },
            FrameType::Ack => Reply::Ack { seq },
            FrameType::Nack => {
                let (code, detail) = decode_nack_payload(&payload).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "undecodable NACK payload")
                })?;
                Reply::Nack { seq, code, detail }
            }
            FrameType::Estimate => {
                let bits: [u8; 8] = payload.as_slice().try_into().map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        "estimate payload must be 8 bytes",
                    )
                })?;
                Reply::Estimate {
                    seq,
                    value: f64::from_bits(u64::from_le_bytes(bits)),
                }
            }
            FrameType::Image => Reply::Image {
                seq,
                bytes: payload,
            },
            // parse_header(client_side=false) admits only reply types.
            _ => unreachable!("direction check admitted a client-side type"),
        })
    }

    fn roundtrip(&mut self, ftype: FrameType, payload: &[u8]) -> io::Result<Reply> {
        self.send_frame(ftype, payload)?;
        self.read_reply()
    }

    /// PING → PONG (or NACK).
    ///
    /// # Errors
    ///
    /// See [`Client::read_reply`].
    pub fn ping(&mut self) -> io::Result<Reply> {
        self.roundtrip(FrameType::Ping, &[])
    }

    /// Sends a batch of items for ingestion into the live engine.
    ///
    /// # Errors
    ///
    /// See [`Client::read_reply`].
    pub fn ingest(&mut self, items: &[u64]) -> io::Result<Reply> {
        let mut payload = Vec::with_capacity(items.len() * 8);
        for item in items {
            payload.extend_from_slice(&item.to_le_bytes());
        }
        self.roundtrip(FrameType::Ingest, &payload)
    }

    /// Submits one fcds wire envelope to the merge store.
    ///
    /// # Errors
    ///
    /// See [`Client::read_reply`].
    pub fn merge(&mut self, image: &[u8]) -> io::Result<Reply> {
        self.roundtrip(FrameType::Merge, image)
    }

    /// Queries an estimate. `family` 0 is the live Θ engine, 1–4 the
    /// merge store families.
    ///
    /// # Errors
    ///
    /// See [`Client::read_reply`].
    pub fn query_estimate(&mut self, family: u8) -> io::Result<Reply> {
        self.roundtrip(FrameType::Query, &[0, family])
    }

    /// Queries a wire image (same family coding as
    /// [`Client::query_estimate`]).
    ///
    /// # Errors
    ///
    /// See [`Client::read_reply`].
    pub fn query_image(&mut self, family: u8) -> io::Result<Reply> {
        self.roundtrip(FrameType::Query, &[1, family])
    }

    /// Asks the server to start draining.
    ///
    /// # Errors
    ///
    /// See [`Client::read_reply`].
    pub fn request_shutdown(&mut self) -> io::Result<Reply> {
        self.roundtrip(FrameType::Shutdown, &[])
    }

    fn roundtrip_flags(
        &mut self,
        ftype: FrameType,
        flags: u8,
        payload: &[u8],
    ) -> io::Result<Reply> {
        self.send_frame_flags(ftype, flags, payload)?;
        self.read_reply()
    }

    /// v2: ingests a batch into the named stream, creating it with
    /// `family` on first use.
    ///
    /// # Errors
    ///
    /// See [`Client::read_reply`].
    pub fn ingest_stream(
        &mut self,
        family: SketchFamily,
        key: &[u8],
        items: &[u64],
    ) -> io::Result<Reply> {
        let mut body = Vec::with_capacity(items.len() * 8);
        for item in items {
            body.extend_from_slice(&item.to_le_bytes());
        }
        let payload = encode_stream_prefix(family, key, None, &body);
        self.roundtrip_flags(FrameType::Ingest, FLAG_STREAM, &payload)
    }

    /// v2: merges one wire envelope into the named stream's
    /// accumulating store, creating the stream with `family` on first
    /// use.
    ///
    /// # Errors
    ///
    /// See [`Client::read_reply`].
    pub fn merge_stream(
        &mut self,
        family: SketchFamily,
        key: &[u8],
        image: &[u8],
    ) -> io::Result<Reply> {
        let payload = encode_stream_prefix(family, key, None, image);
        self.roundtrip_flags(FrameType::Merge, FLAG_STREAM, &payload)
    }

    /// v2 REPLACE: installs `image` as the stream's slot for replica
    /// `source`, replacing any earlier push from the same source (the
    /// idempotent replica-sync merge).
    ///
    /// # Errors
    ///
    /// See [`Client::read_reply`].
    pub fn merge_stream_from(
        &mut self,
        family: SketchFamily,
        key: &[u8],
        source: u64,
        image: &[u8],
    ) -> io::Result<Reply> {
        let payload = encode_stream_prefix(family, key, Some(source), image);
        self.roundtrip_flags(FrameType::Merge, FLAG_STREAM | FLAG_REPLACE, &payload)
    }

    /// v2: queries the named stream's scalar estimate (live engine ∪
    /// replica slots ∪ pushed images).
    ///
    /// # Errors
    ///
    /// See [`Client::read_reply`].
    pub fn query_stream_estimate(&mut self, family: SketchFamily, key: &[u8]) -> io::Result<Reply> {
        let payload = encode_stream_prefix(family, key, None, &[0, family.code()]);
        self.roundtrip_flags(FrameType::Query, FLAG_STREAM, &payload)
    }

    /// v2: queries the named stream's fanned-in wire image.
    ///
    /// # Errors
    ///
    /// See [`Client::read_reply`].
    pub fn query_stream_image(&mut self, family: SketchFamily, key: &[u8]) -> io::Result<Reply> {
        let payload = encode_stream_prefix(family, key, None, &[1, family.code()]);
        self.roundtrip_flags(FrameType::Query, FLAG_STREAM, &payload)
    }
}
