//! The durability tier: per-stream snapshot files written by a
//! background checkpointer.
//!
//! Every `snapshot_interval` the checkpointer encodes each registered
//! stream's *durable image* — the fan-in merge of its live engine
//! image, its boot-recovered image and its accumulated v2 pushes (but
//! **not** its replace-by-source replica slots, which the originating
//! peer re-pushes within one `replica_interval` and which would
//! double-count on the peer for the non-idempotent families) — into a
//! single self-validating record and writes it via write-to-temp +
//! optional fsync + atomic rename. A crash at any byte boundary
//! therefore leaves either the old snapshot or the new one, never a
//! torn file, and anything torn anyway (e.g. a dying disk) is caught by
//! the record's CRC at recovery and quarantined, never trusted.
//!
//! # Snapshot record layout (version 1)
//!
//! ```text
//! offset  size       field
//! 0       4          magic "FCSN"
//! 4       1          version (1)
//! 5       1          sketch family code (1..=4)
//! 6       2          key length, u16 LE (1..=64)
//! 8       8          last-persisted sequence, u64 LE (items counter)
//! 16      8          image length, u64 LE
//! 24      4          CRC-32 (IEEE), u32 LE, over bytes [0..24] ++ key ++ image
//! 28      klen       stream key
//! 28+klen image_len  fcds-wire envelope (the versioned PR 6 format)
//! ```
//!
//! A record file must be *exactly* `28 + klen + image_len` bytes. The
//! CRC covers every header byte before the CRC field plus the whole
//! body, so any single-byte corruption anywhere in the file maps to a
//! typed [`RecoverError`](crate::recover::RecoverError): the magic and
//! version bytes to their own variants, the length fields to a length
//! mismatch (the file's actual length no longer matches), and
//! everything else to a CRC mismatch.
//!
//! The durability contract this buys (documented in the README):
//! bounded loss of at most one `snapshot_interval` of acked ingest per
//! stream — recovery is one more *relaxation* in the paper's sense, a
//! quantified window on top of `r_query`, not a correctness loss.

use crate::recover::SNAP_MAX_IMAGE_BYTES;
use crate::registry::StreamState;
use crate::{ServerCtx, POLL_INTERVAL};
use bytes::Bytes;
use fcds_sketches::wire::{
    hll_multiway_merge, ladder_multiway_concat, mg_multiway_merge, theta_multiway_union,
    SketchFamily, WireEncode,
};
use fcds_sketches::WireError;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Magic bytes opening every snapshot record.
pub const SNAP_MAGIC: [u8; 4] = *b"FCSN";
/// Current snapshot record version.
pub const SNAP_VERSION: u8 = 1;
/// Fixed header length before the key (see the module docs).
pub const SNAP_HEADER_LEN: usize = 28;
/// Suffix of committed snapshot files in a data directory.
pub const SNAP_SUFFIX: &str = ".snap";
/// Suffix of in-flight temp files (atomic-rename staging). Never
/// scanned at recovery; leftovers from a crash are deleted at boot.
pub const TMP_SUFFIX: &str = ".tmp";
/// Suffix appended to a snapshot that failed validation at recovery.
pub const QUARANTINE_SUFFIX: &str = ".quarantine";

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup
/// table, built at compile time — the container is offline, so no crc
/// crate.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Feeds `data` into a running CRC-32 state (start from
/// `0xFFFF_FFFF`, finish by inverting).
fn crc32_feed(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = CRC_TABLE[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// CRC-32 (IEEE) over the concatenation of `parts`.
pub fn crc32(parts: &[&[u8]]) -> u32 {
    let mut state = 0xFFFF_FFFFu32;
    for p in parts {
        state = crc32_feed(state, p);
    }
    !state
}

/// Encodes one snapshot record (see the module docs for the layout).
///
/// # Panics
///
/// If `key` is empty or longer than
/// [`MAX_STREAM_KEY`](crate::frame::MAX_STREAM_KEY) — server-side keys
/// have already passed frame validation.
pub fn encode_record(family: SketchFamily, key: &[u8], seq: u64, image: &[u8]) -> Vec<u8> {
    assert!(
        !key.is_empty() && key.len() <= crate::frame::MAX_STREAM_KEY,
        "snapshot key must be 1..={} bytes, got {}",
        crate::frame::MAX_STREAM_KEY,
        key.len()
    );
    assert!(
        (image.len() as u64) <= SNAP_MAX_IMAGE_BYTES,
        "snapshot image of {} bytes exceeds cap {SNAP_MAX_IMAGE_BYTES}",
        image.len()
    );
    let mut out = Vec::with_capacity(SNAP_HEADER_LEN + key.len() + image.len());
    out.extend_from_slice(&SNAP_MAGIC);
    out.push(SNAP_VERSION);
    out.push(family.code());
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(image.len() as u64).to_le_bytes());
    let crc = crc32(&[&out[..24], key, image]);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(image);
    out
}

/// The committed file name for a stream key: `s-<hex(key)>.snap`. Hex
/// keeps arbitrary binary keys filesystem-safe and collision-free, and
/// recovery cross-checks the name against the key *inside* the record,
/// so a copied or renamed snapshot cannot impersonate another stream.
pub fn snapshot_file_name(key: &[u8]) -> String {
    let mut name = String::with_capacity(2 + key.len() * 2 + SNAP_SUFFIX.len());
    name.push_str("s-");
    for b in key {
        let _ = write!(name, "{b:02x}");
    }
    name.push_str(SNAP_SUFFIX);
    name
}

/// When the OS is asked to make snapshot bytes durable.
///
/// | policy     | file fsync        | directory fsync       | survives            |
/// |------------|-------------------|-----------------------|---------------------|
/// | `Always`   | every snapshot    | every checkpoint round| power loss          |
/// | `Interval` | never             | every checkpoint round| power loss (lagged) |
/// | `Never`    | never             | never                 | process death only  |
///
/// `Never` is still crash-safe against SIGKILL/panic — the page cache
/// survives the process — but not against power loss or kernel panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync each snapshot file before its atomic rename, plus the
    /// directory after every round.
    Always,
    /// fsync only the directory, once per checkpoint round (i.e. once
    /// per `snapshot_interval` with pending writes).
    #[default]
    Interval,
    /// Never fsync. Bounded loss still holds for process crashes.
    Never,
}

impl std::str::FromStr for FsyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "interval" => Ok(FsyncPolicy::Interval),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!(
                "unknown fsync policy {other:?} (expected always|interval|never)"
            )),
        }
    }
}

/// Injectable snapshot storage, so tests can force ENOSPC, short
/// writes and fsync failures deterministically ([`DirStore`] is the
/// real filesystem implementation).
///
/// Contract: [`SnapshotStore::put`] must be atomic — after a crash at
/// any point, a later [`SnapshotStore::get`] of `name` returns either
/// the previous committed bytes or the new ones, never a mixture.
pub trait SnapshotStore: Send + Sync {
    /// Atomically replaces `name` with `bytes`; `fsync_file` asks for
    /// the bytes to be durable before the swap becomes visible.
    fn put(&self, name: &str, bytes: &[u8], fsync_file: bool) -> io::Result<()>;
    /// Makes prior renames durable (directory fsync).
    fn sync_dir(&self) -> io::Result<()>;
    /// Names of every committed snapshot (entries ending
    /// [`SNAP_SUFFIX`]; quarantined and temp entries excluded).
    fn list(&self) -> io::Result<Vec<String>>;
    /// Reads a committed snapshot's bytes.
    fn get(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Moves a failed snapshot aside (append [`QUARANTINE_SUFFIX`]) so
    /// it is kept for forensics but never rescanned.
    fn quarantine(&self, name: &str) -> io::Result<()>;
    /// Deletes a committed snapshot (stream retirement).
    fn remove(&self, name: &str) -> io::Result<()>;
}

/// Filesystem [`SnapshotStore`]: one directory, write-to-temp + fsync +
/// atomic rename per snapshot.
pub struct DirStore {
    dir: PathBuf,
}

impl DirStore {
    /// Opens (creating if needed) `dir` as a snapshot directory and
    /// deletes stale `*.tmp` staging files left by a crash mid-write —
    /// they were never committed, so by the atomicity contract they do
    /// not exist.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<DirStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().ends_with(TMP_SUFFIX) {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(DirStore { dir })
    }

    /// The underlying directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }
}

impl SnapshotStore for DirStore {
    fn put(&self, name: &str, bytes: &[u8], fsync_file: bool) -> io::Result<()> {
        let tmp = self.dir.join(format!("{name}{TMP_SUFFIX}"));
        let dst = self.dir.join(name);
        {
            let mut f = fs::File::create(&tmp)?;
            io::Write::write_all(&mut f, bytes)?;
            if fsync_file {
                f.sync_data()?;
            }
        }
        match fs::rename(&tmp, &dst) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    fn sync_dir(&self) -> io::Result<()> {
        fs::File::open(&self.dir)?.sync_all()
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            if name.ends_with(SNAP_SUFFIX) {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }

    fn get(&self, name: &str) -> io::Result<Vec<u8>> {
        fs::read(self.dir.join(name))
    }

    fn quarantine(&self, name: &str) -> io::Result<()> {
        fs::rename(
            self.dir.join(name),
            self.dir.join(format!("{name}{QUARANTINE_SUFFIX}")),
        )
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        fs::remove_file(self.dir.join(name))
    }
}

/// The images a checkpoint must capture: live engine + boot-recovered
/// slot + accumulated v2 pushes. Replica slots are deliberately
/// excluded (see the module docs).
pub(crate) fn durable_images(state: &StreamState) -> Vec<Bytes> {
    let mut v = vec![state.engine.wire_image()];
    if let Some(r) = state
        .recovered
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
    {
        v.push(r);
    }
    v.extend(
        state
            .pushed
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned(),
    );
    v
}

/// What this server itself holds for a stream: live engine image plus
/// the boot-recovered slot. This is what the replica pusher ships — a
/// post-crash push must not shrink the peer's slot for this source to
/// an empty just-restarted engine.
pub(crate) fn own_images(state: &StreamState) -> Vec<Bytes> {
    let mut v = vec![state.engine.wire_image()];
    if let Some(r) = state
        .recovered
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
    {
        v.push(r);
    }
    v
}

/// Merges `images` with the family's multiway fan-in kernel. `images`
/// must be non-empty (the live image always is present).
pub(crate) fn merged_image(family: SketchFamily, images: &[Bytes]) -> Result<Bytes, WireError> {
    match family {
        SketchFamily::Theta => theta_multiway_union(images).map(|s| s.to_wire_bytes()),
        SketchFamily::Hll => hll_multiway_merge(images).map(|s| s.to_wire_bytes()),
        SketchFamily::Quantiles => {
            ladder_multiway_concat::<u64, _>(images).map(|s| s.to_wire_bytes())
        }
        SketchFamily::Frequency => mg_multiway_merge::<u64, _>(images).map(|s| s.to_wire_bytes()),
    }
}

/// Checkpoints one stream if it has durable progress since its last
/// snapshot. Returns `Ok(true)` when a record was written, `Ok(false)`
/// when the stream was clean.
pub(crate) fn checkpoint_stream(
    state: &StreamState,
    store: &dyn SnapshotStore,
    fsync_file: bool,
) -> Result<bool, String> {
    // Capture the sequence *before* collecting images: concurrent
    // ingest can only make the image richer than `seq` claims, so the
    // recorded lag is conservative, never optimistic.
    let seq = state.items.load(Ordering::Relaxed);
    let was_dirty = state.snapshot_dirty.swap(false, Ordering::AcqRel);
    if seq == state.persisted_seq.load(Ordering::Relaxed) && !was_dirty {
        return Ok(false);
    }
    let restore_dirty = || {
        if was_dirty {
            state.snapshot_dirty.store(true, Ordering::Release);
        }
    };
    let images = durable_images(state);
    let image = if images.len() == 1 {
        images.into_iter().next().expect("one image")
    } else {
        match merged_image(state.family, &images) {
            Ok(img) => img,
            Err(e) => {
                restore_dirty();
                return Err(format!("merge for snapshot: {e}"));
            }
        }
    };
    let record = encode_record(state.family, &state.key, seq, image.as_ref());
    if let Err(e) = store.put(&snapshot_file_name(&state.key), &record, fsync_file) {
        restore_dirty();
        return Err(format!("snapshot put: {e}"));
    }
    state.persisted_seq.store(seq, Ordering::Release);
    Ok(true)
}

/// One checkpoint round over every registered stream, with the
/// configured fsync policy applied. Errors are counted, never fatal —
/// a full disk degrades durability, it does not take ingest down.
pub(crate) fn checkpoint_round(ctx: &ServerCtx, store: &dyn SnapshotStore) {
    let fsync_file = ctx.cfg.fsync_policy == FsyncPolicy::Always;
    let mut wrote = false;
    for state in ctx.registry.list() {
        match checkpoint_stream(&state, store, fsync_file) {
            Ok(true) => {
                wrote = true;
                ctx.stats.snapshots_written.fetch_add(1, Ordering::Relaxed);
            }
            Ok(false) => {}
            Err(_) => {
                ctx.stats.snapshot_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    if wrote && ctx.cfg.fsync_policy != FsyncPolicy::Never && store.sync_dir().is_err() {
        ctx.stats.snapshot_errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// The background checkpointer thread: one [`checkpoint_round`] per
/// `snapshot_interval` until shutdown (or the dedicated stop flag the
/// drain path uses to hand writing over to the final-checkpoint pass).
pub(crate) fn checkpointer(ctx: Arc<ServerCtx>, store: Arc<dyn SnapshotStore>) {
    let mut last = Instant::now();
    loop {
        if ctx.ctl.shutdown.load(Ordering::Acquire)
            || ctx.ctl.checkpoint_stop.load(Ordering::Acquire)
        {
            return;
        }
        std::thread::sleep(POLL_INTERVAL);
        if last.elapsed() < ctx.cfg.snapshot_interval {
            continue;
        }
        last = Instant::now();
        checkpoint_round(&ctx, &*store);
    }
}
