//! Multi-stream registry suite: v2 stream-addressed frames end to end.
//!
//! Covers the PR's acceptance surface over real TCP: eight named
//! streams across all four families on one server, registry lifecycle
//! races (concurrent create-on-first-ingest, ingest-during-retire,
//! query-during-drain), per-stream fault isolation (a poisoned worker
//! on one stream never NACKs another), hostile v2 frames (oversized
//! key, bad family code, truncated prefixes, misplaced flags, v1/v2
//! mixing on one connection), and two-server replica-sync convergence.

use fcds_server::client::{Client, Reply};
use fcds_server::frame::{
    encode_frame_flags, FrameType, NackCode, FLAG_REPLACE, FLAG_STREAM, MAX_STREAM_KEY,
};
use fcds_server::{serve, ServerConfig, ServerHandle};
use fcds_sketches::wire::{peek, LadderWireView, MgWireView, SketchFamily};
use std::time::Duration;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(5);

const FAMILIES: [SketchFamily; 4] = [
    SketchFamily::Theta,
    SketchFamily::Hll,
    SketchFamily::Quantiles,
    SketchFamily::Frequency,
];

fn test_config() -> ServerConfig {
    ServerConfig {
        frame_deadline: Duration::from_millis(300),
        ..ServerConfig::default()
    }
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect(handle.local_addr(), CLIENT_TIMEOUT).expect("connect")
}

fn stream_key(i: usize) -> Vec<u8> {
    format!("stream-{i}").into_bytes()
}

/// Drives `items` into a keyed stream and waits until the stream's
/// fanned-in state reflects them (workers flush after every batch, so
/// this converges within a few poll rounds).
fn ingest_all(c: &mut Client, family: SketchFamily, key: &[u8], items: &[u64]) {
    for chunk in items.chunks(500) {
        let reply = c.ingest_stream(family, key, chunk).unwrap();
        assert!(matches!(reply, Reply::Ack { .. }), "ingest: {reply:?}");
    }
}

/// The observed distinct-count (Θ/HLL) or total item count (Q/F) for a
/// keyed stream, via the family's natural query.
fn observed_count(c: &mut Client, family: SketchFamily, key: &[u8]) -> f64 {
    match family {
        SketchFamily::Theta | SketchFamily::Hll => {
            match c.query_stream_estimate(family, key).unwrap() {
                Reply::Estimate { value, .. } => value,
                other => panic!("estimate reply: {other:?}"),
            }
        }
        SketchFamily::Quantiles => match c.query_stream_image(family, key).unwrap() {
            Reply::Image { bytes, .. } => LadderWireView::<u64>::parse(&bytes).unwrap().n() as f64,
            other => panic!("image reply: {other:?}"),
        },
        SketchFamily::Frequency => match c.query_stream_image(family, key).unwrap() {
            Reply::Image { bytes, .. } => MgWireView::<u64>::parse(&bytes).unwrap().n() as f64,
            other => panic!("image reply: {other:?}"),
        },
    }
}

/// Polls until `observed_count` is within `tol` of `expect` (the worker
/// queues are asynchronous) — panics after ~2 s.
fn wait_for_count(c: &mut Client, family: SketchFamily, key: &[u8], expect: f64, tol: f64) -> f64 {
    let mut got = 0.0;
    for _ in 0..100 {
        got = observed_count(c, family, key);
        if (got - expect).abs() / expect <= tol {
            return got;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("{family:?}/{key:?}: observed {got}, want within {tol} of {expect}");
}

#[test]
fn eight_streams_across_four_families_on_one_server() {
    let handle = serve(test_config()).unwrap();
    let mut c = connect(&handle);
    let per_stream = 10_000u64;
    for i in 0..8 {
        let family = FAMILIES[i % 4];
        let base = i as u64 * per_stream;
        let items: Vec<u64> = (base..base + per_stream).collect();
        ingest_all(&mut c, family, &stream_key(i), &items);
    }
    for i in 0..8 {
        let family = FAMILIES[i % 4];
        wait_for_count(&mut c, family, &stream_key(i), per_stream as f64, 0.1);
    }
    // The registry sees 8 named streams + the default stream.
    let streams = handle.list_streams();
    assert_eq!(streams.len(), 9);
    // v1 frames on the same connection still hit the default Θ stream.
    assert!(matches!(c.ingest(&[1, 2, 3]).unwrap(), Reply::Ack { .. }));
    let report = handle.shutdown();
    assert_eq!(report.leaked_threads, 0);
    assert_eq!(report.stats.streams_created, 9);
}

#[test]
fn concurrent_create_of_same_key_yields_one_stream() {
    let handle = serve(test_config()).unwrap();
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let mut c = connect(&handle);
            std::thread::spawn(move || {
                let items: Vec<u64> = (t * 1000..(t + 1) * 1000).collect();
                let reply = c
                    .ingest_stream(SketchFamily::Hll, b"contended", &items)
                    .unwrap();
                assert!(matches!(reply, Reply::Ack { .. }), "{reply:?}");
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let mut c = connect(&handle);
    wait_for_count(&mut c, SketchFamily::Hll, b"contended", 8_000.0, 0.1);
    // Exactly one stream materialised for the key, and every ACKed batch
    // lands in its counter. The estimate converging above does not imply
    // the last queued batch was applied yet (estimator variance can
    // cover for it), so poll the counter, not just the estimate.
    let created = |handle: &ServerHandle| {
        handle
            .list_streams()
            .into_iter()
            .filter(|s| s.key == b"contended")
            .collect::<Vec<_>>()
    };
    let mut streams = created(&handle);
    for _ in 0..100 {
        if streams.len() == 1 && streams[0].items == 8_000 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
        streams = created(&handle);
    }
    assert_eq!(streams.len(), 1);
    assert_eq!(streams[0].items, 8_000);
    let report = handle.shutdown();
    assert_eq!(report.leaked_threads, 0);
    assert_eq!(report.stats.streams_created, 2); // default + contended
}

#[test]
fn family_mismatch_and_unknown_stream_are_typed_nacks() {
    let handle = serve(test_config()).unwrap();
    let mut c = connect(&handle);
    assert!(matches!(
        c.ingest_stream(SketchFamily::Theta, b"fixed", &[1, 2, 3])
            .unwrap(),
        Reply::Ack { .. }
    ));
    // Same key, different family: rejected, stream untouched.
    let reply = c
        .ingest_stream(SketchFamily::Quantiles, b"fixed", &[4, 5])
        .unwrap();
    assert_eq!(reply.nack_code(), Some(NackCode::FamilyMismatch));
    let reply = c
        .query_stream_estimate(SketchFamily::Hll, b"fixed")
        .unwrap();
    assert_eq!(reply.nack_code(), Some(NackCode::FamilyMismatch));
    // Queries never create streams.
    let reply = c
        .query_stream_estimate(SketchFamily::Theta, b"never-made")
        .unwrap();
    assert_eq!(reply.nack_code(), Some(NackCode::UnknownStream));
    assert!(handle.list_streams().iter().all(|s| s.key != b"never-made"));
    handle.shutdown();
}

#[test]
fn retire_then_reingest_creates_a_fresh_stream() {
    let handle = serve(test_config()).unwrap();
    let mut c = connect(&handle);
    ingest_all(
        &mut c,
        SketchFamily::Theta,
        b"cycled",
        &(0..5_000u64).collect::<Vec<_>>(),
    );
    wait_for_count(&mut c, SketchFamily::Theta, b"cycled", 5_000.0, 0.1);
    assert!(handle.retire_stream(b"cycled"));
    assert!(!handle.retire_stream(b"cycled"), "already gone");
    assert!(!handle.retire_stream(b"default"), "default not retirable");
    // The key is free again — and may even change family.
    let reply = c
        .ingest_stream(SketchFamily::Frequency, b"cycled", &[7, 7, 7])
        .unwrap();
    assert!(matches!(reply, Reply::Ack { .. }));
    wait_for_count(&mut c, SketchFamily::Frequency, b"cycled", 3.0, 0.01);
    let report = handle.shutdown();
    assert_eq!(report.stats.streams_retired, 1);
    assert_eq!(report.leaked_threads, 0);
    // The retired stream's workers are folded into the drain report.
    assert!(report.workers_flushed >= 2);
}

#[test]
fn ingest_racing_retire_never_hangs_or_panics() {
    let handle = serve(test_config()).unwrap();
    let mut c = connect(&handle);
    assert!(matches!(
        c.ingest_stream(SketchFamily::Hll, b"doomed", &[1]).unwrap(),
        Reply::Ack { .. }
    ));
    let writer = std::thread::spawn(move || {
        // Every reply must be a typed Ack/Nack — never a hang, never a
        // dropped connection.
        for i in 0..200u64 {
            let reply = c.ingest_stream(SketchFamily::Hll, b"doomed", &[i]).unwrap();
            assert!(
                matches!(reply, Reply::Ack { .. } | Reply::Nack { .. }),
                "{reply:?}"
            );
        }
    });
    std::thread::sleep(Duration::from_millis(5));
    handle.retire_stream(b"doomed");
    writer.join().unwrap();
    let report = handle.shutdown();
    assert_eq!(report.leaked_threads, 0);
    assert_eq!(report.stats.conn_panics, 0);
}

#[test]
fn queries_still_served_during_drain() {
    let handle = serve(test_config()).unwrap();
    let mut c = connect(&handle);
    ingest_all(
        &mut c,
        SketchFamily::Theta,
        b"readable",
        &(0..5_000u64).collect::<Vec<_>>(),
    );
    wait_for_count(&mut c, SketchFamily::Theta, b"readable", 5_000.0, 0.1);
    // Client-requested drain: ingest stops, queries keep working.
    assert!(matches!(c.request_shutdown().unwrap(), Reply::Ack { .. }));
    let reply = c
        .ingest_stream(SketchFamily::Theta, b"readable", &[9])
        .unwrap();
    assert_eq!(reply.nack_code(), Some(NackCode::Draining));
    match c
        .query_stream_estimate(SketchFamily::Theta, b"readable")
        .unwrap()
    {
        Reply::Estimate { value, .. } => {
            assert!((value - 5_000.0).abs() / 5_000.0 < 0.1, "estimate {value}")
        }
        other => panic!("query during drain: {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn poisoned_stream_never_nacks_its_neighbours() {
    let poison = u64::MAX;
    let handle = serve(ServerConfig {
        fault_panic_on: Some(poison),
        stream_workers: 1,
        ..test_config()
    })
    .unwrap();
    let mut c = connect(&handle);
    for i in 0..4 {
        let reply = c
            .ingest_stream(FAMILIES[i % 4], &stream_key(i), &[i as u64])
            .unwrap();
        assert!(matches!(reply, Reply::Ack { .. }));
    }
    // Poison stream 0: its only worker dies (the batch was acked before
    // the worker dequeued it), and once dead, further ingest NACKs.
    assert!(matches!(
        c.ingest_stream(FAMILIES[0], &stream_key(0), &[poison])
            .unwrap(),
        Reply::Ack { .. }
    ));
    let mut nacked = false;
    for _ in 0..100 {
        let reply = c
            .ingest_stream(FAMILIES[0], &stream_key(0), &[1, 2, 3])
            .unwrap();
        if let Reply::Nack { code, .. } = reply {
            assert!(
                matches!(
                    code,
                    NackCode::Internal | NackCode::BreakerOpen | NackCode::Overload
                ),
                "unexpected code {code:?}"
            );
            nacked = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(nacked, "dead stream should eventually NACK ingest");
    assert!(handle.is_degraded());
    // Isolation: every *other* stream still ACKs everything.
    for i in 1..4 {
        for _ in 0..10 {
            let reply = c
                .ingest_stream(FAMILIES[i % 4], &stream_key(i), &[42])
                .unwrap();
            assert!(
                matches!(reply, Reply::Ack { .. }),
                "stream {i} was hit by stream 0's fault: {reply:?}"
            );
        }
    }
    let report = handle.shutdown();
    assert_eq!(report.stats.worker_panics, 1);
    assert_eq!(report.leaked_threads, 0);
}

#[test]
fn hostile_v2_frames_are_typed_and_survivable() {
    let handle = serve(test_config()).unwrap();
    let mut c = connect(&handle);

    // Oversized key: klen byte > MAX_STREAM_KEY (prefix codec bound).
    let mut payload = vec![SketchFamily::Theta.code(), (MAX_STREAM_KEY + 1) as u8];
    payload.extend_from_slice(&[b'k'; MAX_STREAM_KEY + 1]);
    c.send_raw(&encode_frame_flags(
        FrameType::Ingest,
        FLAG_STREAM,
        1,
        &payload,
    ))
    .unwrap();
    assert_eq!(
        c.read_reply().unwrap().nack_code(),
        Some(NackCode::Malformed)
    );

    // Bad family code in the prefix.
    c.send_raw(&encode_frame_flags(
        FrameType::Ingest,
        FLAG_STREAM,
        2,
        &[0x09, 1, b'a'],
    ))
    .unwrap();
    assert_eq!(
        c.read_reply().unwrap().nack_code(),
        Some(NackCode::Malformed)
    );

    // Truncated prefix (klen runs past the payload).
    c.send_raw(&encode_frame_flags(
        FrameType::Ingest,
        FLAG_STREAM,
        3,
        &[SketchFamily::Hll.code(), 10, b'a'],
    ))
    .unwrap();
    assert_eq!(
        c.read_reply().unwrap().nack_code(),
        Some(NackCode::Malformed)
    );

    // REPLACE without STREAM is a header-level violation (kept open).
    c.send_raw(&encode_frame_flags(FrameType::Merge, FLAG_REPLACE, 4, b""))
        .unwrap();
    assert_eq!(
        c.read_reply().unwrap().nack_code(),
        Some(NackCode::Malformed)
    );

    // STREAM flag on a Ping.
    c.send_raw(&encode_frame_flags(FrameType::Ping, FLAG_STREAM, 5, b""))
        .unwrap();
    assert_eq!(
        c.read_reply().unwrap().nack_code(),
        Some(NackCode::Malformed)
    );

    // Undefined flag bit.
    c.send_raw(&encode_frame_flags(FrameType::Ingest, 0x40, 6, b""))
        .unwrap();
    assert_eq!(
        c.read_reply().unwrap().nack_code(),
        Some(NackCode::Malformed)
    );

    // The connection survived all of it: v1 and v2 work interleaved.
    assert!(matches!(c.ping().unwrap(), Reply::Pong { .. }));
    assert!(matches!(c.ingest(&[1, 2]).unwrap(), Reply::Ack { .. }));
    assert!(matches!(
        c.ingest_stream(SketchFamily::Theta, b"mixed", &[3, 4])
            .unwrap(),
        Reply::Ack { .. }
    ));
    assert!(matches!(c.ingest(&[5]).unwrap(), Reply::Ack { .. }));
    let report = handle.shutdown();
    assert_eq!(report.leaked_threads, 0);
    assert_eq!(report.stats.conn_panics, 0);
}

/// Two real servers: A ingests, A's replica pusher ships every stream's
/// image to B, and B's per-stream fan-in converges on A's state within
/// one sync period.
#[test]
fn replica_sync_converges_across_two_servers() {
    let b = serve(test_config()).unwrap();
    let a = serve(ServerConfig {
        replica_peer: Some(b.local_addr().to_string()),
        replica_interval: Duration::from_millis(100),
        replica_source_id: 7,
        ..test_config()
    })
    .unwrap();

    let mut ca = connect(&a);
    let per_stream = 20_000u64;
    for (i, family) in FAMILIES.iter().enumerate() {
        let base = i as u64 * per_stream;
        let items: Vec<u64> = (base..base + per_stream).collect();
        ingest_all(&mut ca, *family, &stream_key(i), &items);
    }
    for (i, family) in FAMILIES.iter().enumerate() {
        wait_for_count(&mut ca, *family, &stream_key(i), per_stream as f64, 0.1);
    }

    // B must materialise all four streams (create-on-first-merge) and
    // converge within the family's error envelope. Allow a few sync
    // periods of slack for scheduling.
    let mut cb = connect(&b);
    for (i, family) in FAMILIES.iter().enumerate() {
        let mut converged = false;
        let mut last = 0.0;
        for _ in 0..100 {
            std::thread::sleep(Duration::from_millis(20));
            match family {
                SketchFamily::Theta | SketchFamily::Hll => {
                    match cb.query_stream_estimate(*family, &stream_key(i)) {
                        Ok(Reply::Estimate { value, .. }) => last = value,
                        Ok(_) => continue, // UnknownStream until first push
                        Err(e) => panic!("query: {e}"),
                    }
                }
                _ => match cb.query_stream_image(*family, &stream_key(i)) {
                    Ok(Reply::Image { bytes, .. }) => {
                        last = match family {
                            SketchFamily::Quantiles => {
                                LadderWireView::<u64>::parse(&bytes).unwrap().n() as f64
                            }
                            _ => MgWireView::<u64>::parse(&bytes).unwrap().n() as f64,
                        }
                    }
                    Ok(_) => continue,
                    Err(e) => panic!("query: {e}"),
                },
            }
            if (last - per_stream as f64).abs() / per_stream as f64 <= 0.08 {
                converged = true;
                break;
            }
        }
        assert!(
            converged,
            "{family:?}/{i}: peer saw {last}, want ~{per_stream}"
        );
    }

    // Re-pushes replaced (not accumulated) the source slot: the image
    // query of a Frequency stream still decodes and its n stayed ~one
    // stream's worth, proving idempotence for a non-idempotent family.
    match cb
        .query_stream_image(SketchFamily::Frequency, &stream_key(3))
        .unwrap()
    {
        Reply::Image { bytes, .. } => {
            let peeked = peek(&bytes, u64::MAX).unwrap();
            assert_eq!(peeked.family, SketchFamily::Frequency);
        }
        other => panic!("image: {other:?}"),
    }

    let ra = a.shutdown();
    assert!(ra.stats.replica_pushes > 0, "pusher never delivered");
    let rb = b.shutdown();
    assert_eq!(rb.leaked_threads, 0);
    assert!(rb.stats.merges_accepted > 0);
}
