//! Hostile-frame suite: every malformed input the frame layer claims to
//! reject, sent over a real connection, asserting the typed NACK and
//! the documented connection disposition — and, above all, that the
//! server survives every one of them.
//!
//! The contract under test (see `frame::HeaderError`):
//!
//! | attack                    | NACK code        | connection |
//! |---------------------------|------------------|------------|
//! | wrong magic               | `Malformed`      | closed     |
//! | unknown/server-side type  | `Malformed`      | open       |
//! | non-zero flags            | `Malformed`      | open       |
//! | oversized declared length | `PayloadTooLarge`| closed     |
//! | corrupted payload         | `Checksum`       | open       |
//! | ingest len % 8 != 0       | `Malformed`      | open       |
//! | invalid merge envelope    | `Wire`           | open       |
//! | truncated frame + stall   | `Timeout`        | closed     |

use fcds_server::client::{Client, Reply};
use fcds_server::frame::{encode_frame, FrameType, NackCode, FRAME_HEADER_LEN};
use fcds_server::{serve, ServerConfig, ServerHandle};
use fcds_sketches::wire::WireEncode;
use std::io::ErrorKind;
use std::time::Duration;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(5);

fn hostile_config() -> ServerConfig {
    ServerConfig {
        max_frame_payload: 64 * 1024,
        frame_deadline: Duration::from_millis(200),
        ..ServerConfig::default()
    }
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect(handle.local_addr(), CLIENT_TIMEOUT).expect("connect")
}

/// Asserts the server is still alive and fully functional by running a
/// fresh request on a fresh connection.
fn assert_server_alive(handle: &ServerHandle) {
    let mut probe = connect(handle);
    assert!(
        matches!(probe.ping().unwrap(), Reply::Pong { .. }),
        "server must answer a fresh connection after hostile input"
    );
}

/// Reads until EOF, asserting the connection was actually closed.
fn assert_closed(c: &mut Client) {
    match c.read_reply() {
        Err(e) => assert!(
            e.kind() == ErrorKind::UnexpectedEof
                || e.kind() == ErrorKind::ConnectionReset
                || e.kind() == ErrorKind::ConnectionAborted,
            "expected closed connection, got {e:?}"
        ),
        Ok(r) => panic!("expected closed connection, got reply {r:?}"),
    }
}

#[test]
fn bad_magic_nacks_malformed_and_closes() {
    let handle = serve(hostile_config()).unwrap();
    let mut c = connect(&handle);
    let mut frame = encode_frame(FrameType::Ping, 1, &[]);
    frame[0..4].copy_from_slice(b"EVIL");
    c.send_raw(&frame).unwrap();
    let reply = c.read_reply().unwrap();
    assert_eq!(reply.nack_code(), Some(NackCode::Malformed));
    assert_closed(&mut c);
    assert_server_alive(&handle);
    assert_eq!(handle.shutdown().leaked_threads, 0);
}

#[test]
fn unknown_type_nacks_malformed_and_stays_open() {
    let handle = serve(hostile_config()).unwrap();
    let mut c = connect(&handle);
    let mut frame = encode_frame(FrameType::Ping, 2, b"xx");
    frame[4] = 0x3F; // no such type
    c.send_raw(&frame).unwrap();
    let reply = c.read_reply().unwrap();
    assert_eq!(reply.nack_code(), Some(NackCode::Malformed));
    // Framing stayed intact (payload was skipped): the connection works.
    assert!(matches!(c.ping().unwrap(), Reply::Pong { .. }));
    assert_eq!(handle.shutdown().leaked_threads, 0);
}

#[test]
fn server_side_type_from_client_is_rejected() {
    let handle = serve(hostile_config()).unwrap();
    let mut c = connect(&handle);
    // An Ack is a server→client frame; a client sending one is a
    // protocol violation (caught by the direction check).
    let frame = encode_frame(FrameType::Ack, 3, &[]);
    c.send_raw(&frame).unwrap();
    let reply = c.read_reply().unwrap();
    assert_eq!(reply.nack_code(), Some(NackCode::Malformed));
    assert!(matches!(c.ping().unwrap(), Reply::Pong { .. }));
    assert_eq!(handle.shutdown().leaked_threads, 0);
}

#[test]
fn nonzero_flags_nack_malformed_and_stay_open() {
    let handle = serve(hostile_config()).unwrap();
    let mut c = connect(&handle);
    let mut frame = encode_frame(FrameType::Ping, 4, &[]);
    frame[5] = 0x80;
    c.send_raw(&frame).unwrap();
    let reply = c.read_reply().unwrap();
    assert_eq!(reply.nack_code(), Some(NackCode::Malformed));
    assert!(matches!(c.ping().unwrap(), Reply::Pong { .. }));
    assert_eq!(handle.shutdown().leaked_threads, 0);
}

#[test]
fn oversized_length_prefix_nacks_and_closes_without_allocating() {
    let handle = serve(hostile_config()).unwrap();
    let mut c = connect(&handle);
    // Declare 3 GiB. The server must reject from the header alone —
    // if it tried to buffer the declared length first, this test would
    // OOM/stall rather than NACK promptly.
    let mut frame = encode_frame(FrameType::Ingest, 5, &[]);
    frame[8..12].copy_from_slice(&(3u32 << 30).to_le_bytes());
    c.send_raw(&frame).unwrap();
    let reply = c.read_reply().unwrap();
    assert_eq!(reply.nack_code(), Some(NackCode::PayloadTooLarge));
    assert_closed(&mut c);
    assert_server_alive(&handle);
    assert_eq!(handle.shutdown().leaked_threads, 0);
}

#[test]
fn bit_flipped_payload_nacks_checksum_and_stays_open() {
    let handle = serve(hostile_config()).unwrap();
    let mut c = connect(&handle);
    let payload: Vec<u8> = 1u64.to_le_bytes().to_vec();
    let mut frame = encode_frame(FrameType::Ingest, 6, &payload);
    frame[FRAME_HEADER_LEN] ^= 0x01; // flip one payload bit post-checksum
    c.send_raw(&frame).unwrap();
    let reply = c.read_reply().unwrap();
    assert_eq!(reply.nack_code(), Some(NackCode::Checksum));
    // The corrupted item must NOT have been ingested: estimates come
    // from acked items only (live engine is empty → estimate 0).
    match c.query_estimate(0).unwrap() {
        Reply::Estimate { value, .. } => assert_eq!(value, 0.0),
        other => panic!("unexpected reply: {other:?}"),
    }
    assert!(matches!(c.ping().unwrap(), Reply::Pong { .. }));
    assert_eq!(handle.shutdown().leaked_threads, 0);
}

#[test]
fn ragged_ingest_payload_nacks_malformed() {
    let handle = serve(hostile_config()).unwrap();
    let mut c = connect(&handle);
    let frame = encode_frame(FrameType::Ingest, 7, &[0u8; 13]); // 13 % 8 != 0
    c.send_raw(&frame).unwrap();
    let reply = c.read_reply().unwrap();
    assert_eq!(reply.nack_code(), Some(NackCode::Malformed));
    assert!(matches!(c.ping().unwrap(), Reply::Pong { .. }));
    assert_eq!(handle.shutdown().leaked_threads, 0);
}

#[test]
fn hostile_merge_envelopes_nack_wire_and_never_enter_the_store() {
    let handle = serve(hostile_config()).unwrap();
    let mut c = connect(&handle);

    // A valid Θ image to mutate.
    let mut s = fcds_sketches::theta::QuickSelectThetaSketch::new(10, 0).unwrap();
    for i in 0..5_000u64 {
        s.update(i);
    }
    let good = s.compact().to_wire_bytes().as_ref().to_vec();

    // (a) Truncated at every envelope boundary that fits in a frame:
    // header cut short, payload cut short, payload overlong.
    for cut in [0, 1, 8, 15, 16, good.len() - 1] {
        let reply = c.merge(&good[..cut]).unwrap();
        assert_eq!(
            reply.nack_code(),
            Some(NackCode::Wire),
            "truncation at {cut} must be a Wire NACK"
        );
    }
    let mut overlong = good.clone();
    overlong.push(0);
    assert_eq!(
        c.merge(&overlong).unwrap().nack_code(),
        Some(NackCode::Wire)
    );

    // (b) Corrupted envelope magic.
    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xFF;
    assert_eq!(
        c.merge(&bad_magic).unwrap().nack_code(),
        Some(NackCode::Wire)
    );

    // (c) Cross-family confusion: header claims HLL, payload is Θ.
    let mut cross = good.clone();
    cross[5] = 2; // SketchFamily::Hll code
    assert_eq!(c.merge(&cross).unwrap().nack_code(), Some(NackCode::Wire));

    // (d) Absurd declared envelope payload length.
    let mut absurd = good.clone();
    absurd[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    assert_eq!(c.merge(&absurd).unwrap().nack_code(), Some(NackCode::Wire));

    // None of the rejects contaminated the store: a theta estimate
    // query still reports the empty-store Wire error...
    assert_eq!(
        c.query_estimate(1).unwrap().nack_code(),
        Some(NackCode::Wire)
    );
    // ...and after one good merge the estimate reflects only it.
    assert!(matches!(c.merge(&good).unwrap(), Reply::Ack { .. }));
    match c.query_estimate(1).unwrap() {
        Reply::Estimate { value, .. } => {
            assert!(
                (value - 5_000.0).abs() / 5_000.0 < 0.1,
                "estimate {value} should reflect only the one good image"
            );
        }
        other => panic!("unexpected reply: {other:?}"),
    }
    assert_eq!(handle.shutdown().leaked_threads, 0);
}

#[test]
fn mid_frame_disconnect_leaves_server_healthy() {
    let handle = serve(hostile_config()).unwrap();
    for cut in [1, 4, 8, FRAME_HEADER_LEN - 1, FRAME_HEADER_LEN + 3] {
        let mut c = connect(&handle);
        let frame = encode_frame(FrameType::Ingest, 8, &[0u8; 64]);
        c.send_raw(&frame[..cut.min(frame.len())]).unwrap();
        drop(c); // sever mid-frame
    }
    assert_server_alive(&handle);
    let report = handle.shutdown();
    assert_eq!(report.leaked_threads, 0);
    assert_eq!(report.stats.conns_opened, report.stats.conns_closed);
}

#[test]
fn interleaved_garbage_after_valid_frames_is_contained() {
    let handle = serve(hostile_config()).unwrap();
    let mut c = connect(&handle);
    // Valid ingest, then garbage. The garbage fails the magic check and
    // the connection closes — but the acked work must have landed.
    assert!(matches!(
        c.ingest(&[10, 20, 30]).unwrap(),
        Reply::Ack { .. }
    ));
    c.send_raw(b"\xDE\xAD\xBE\xEF garbage garbage garbage")
        .unwrap();
    let reply = c.read_reply().unwrap();
    assert_eq!(reply.nack_code(), Some(NackCode::Malformed));
    assert_closed(&mut c);
    // Fresh connection sees the acked items.
    let mut c2 = connect(&handle);
    let mut landed = 0.0;
    for _ in 0..100 {
        match c2.query_estimate(0).unwrap() {
            Reply::Estimate { value, .. } => landed = value,
            other => panic!("unexpected reply: {other:?}"),
        }
        if landed == 3.0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(landed, 3.0, "acked items must survive a later bad frame");
    assert_eq!(handle.shutdown().leaked_threads, 0);
}

#[test]
fn a_volley_of_hostile_frames_never_kills_the_server() {
    // Throw every attack in sequence at one server instance; it must
    // answer a clean request afterwards with zero connection panics.
    let handle = serve(hostile_config()).unwrap();
    let attacks: Vec<Vec<u8>> = vec![
        b"EVIL".to_vec(),
        vec![0u8; FRAME_HEADER_LEN],
        {
            let mut f = encode_frame(FrameType::Ping, 1, &[]);
            f[4] = 0x7F;
            f
        },
        {
            let mut f = encode_frame(FrameType::Merge, 2, b"not an envelope");
            f[FRAME_HEADER_LEN + 2] ^= 0xFF;
            f
        },
        {
            let mut f = encode_frame(FrameType::Ingest, 3, &[]);
            f[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
            f
        },
    ];
    for attack in attacks {
        let mut c = connect(&handle);
        let _ = c.send_raw(&attack);
        let _ = c.read_reply(); // NACK or close, both fine
    }
    assert_server_alive(&handle);
    let report = handle.shutdown();
    assert_eq!(
        report.stats.conn_panics, 0,
        "no connection thread may panic"
    );
    assert_eq!(report.stats.worker_panics, 0);
    assert_eq!(report.leaked_threads, 0);
}
