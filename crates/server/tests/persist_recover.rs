//! Durability-tier suite: snapshot encode/decode totality, crash-shaped
//! filesystem states, boot-time recovery, quarantine semantics, and the
//! replica-pusher circuit breaker.
//!
//! The adversarial core is exhaustive, not sampled: *every* byte-boundary
//! truncation and *every* single-byte mutation of a real snapshot record
//! must come back as a typed [`RecoverError`] — never a panic, never an
//! accepted record — and a torn staging write at *every* prefix length
//! must leave the previous committed snapshot readable (the
//! write-to-temp + atomic-rename contract: old or new, never a blend).

use fcds_server::client::{Client, Reply};
use fcds_server::frame::NackCode;
use fcds_server::persist::{
    encode_record, snapshot_file_name, DirStore, FsyncPolicy, SnapshotStore, QUARANTINE_SUFFIX,
    SNAP_SUFFIX, TMP_SUFFIX,
};
use fcds_server::recover::{decode_record, RecoverError};
use fcds_server::{serve, serve_with_store, BreakerState, ServeError, ServerConfig, ServerHandle};
use fcds_sketches::wire::{LadderWireView, MgWireView, SketchFamily};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(5);

const FAMILIES: [SketchFamily; 4] = [
    SketchFamily::Theta,
    SketchFamily::Hll,
    SketchFamily::Quantiles,
    SketchFamily::Frequency,
];

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh, empty scratch directory unique to this test process.
fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fcds-persist-{}-{}-{tag}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn durable_config(dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        data_dir: Some(dir.to_string_lossy().into_owned()),
        snapshot_interval: Duration::from_millis(40),
        fsync_policy: FsyncPolicy::Never,
        ..ServerConfig::default()
    }
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect(handle.local_addr(), CLIENT_TIMEOUT).expect("connect")
}

fn ingest_all(c: &mut Client, family: SketchFamily, key: &[u8], items: &[u64]) {
    for chunk in items.chunks(500) {
        let reply = c.ingest_stream(family, key, chunk).unwrap();
        assert!(matches!(reply, Reply::Ack { .. }), "ingest: {reply:?}");
    }
}

/// The observed distinct-count (Θ/HLL) or total item count (Q/F) for a
/// keyed stream, via the family's natural query.
fn observed_count(c: &mut Client, family: SketchFamily, key: &[u8]) -> f64 {
    match family {
        SketchFamily::Theta | SketchFamily::Hll => {
            match c.query_stream_estimate(family, key).unwrap() {
                Reply::Estimate { value, .. } => value,
                other => panic!("estimate reply: {other:?}"),
            }
        }
        SketchFamily::Quantiles | SketchFamily::Frequency => {
            match c.query_stream_image(family, key).unwrap() {
                Reply::Image { bytes, .. } => match family {
                    SketchFamily::Quantiles => {
                        LadderWireView::<u64>::parse(&bytes).expect("ladder").n() as f64
                    }
                    _ => MgWireView::<u64>::parse(&bytes).expect("mg").n() as f64,
                },
                other => panic!("image reply: {other:?}"),
            }
        }
    }
}

/// One committed snapshot record produced by the real pipeline: boot a
/// durable server, ingest, drain (the graceful final checkpoint), read
/// the record back off disk.
fn committed_record(dir: &std::path::Path, key: &[u8], items: u64) -> Vec<u8> {
    let handle = serve(durable_config(dir)).expect("serve");
    let mut c = connect(&handle);
    let data: Vec<u64> = (0..items).collect();
    ingest_all(&mut c, SketchFamily::Theta, key, &data);
    drop(c);
    let drain = handle.shutdown();
    assert_eq!(drain.leaked_threads, 0);
    let path = dir.join(snapshot_file_name(key));
    std::fs::read(&path).expect("read committed snapshot")
}

#[test]
fn committed_record_roundtrips_exactly() {
    let dir = tmp_dir("roundtrip");
    let bytes = committed_record(&dir, b"alpha", 1_000);
    let rec = decode_record(&bytes).expect("valid record decodes");
    assert_eq!(rec.family, SketchFamily::Theta);
    assert_eq!(rec.key, b"alpha");
    assert_eq!(rec.seq, 1_000);
    // Re-encoding the decoded fields reproduces the on-disk bytes —
    // the encoder and decoder agree on every field and the CRC.
    let reencoded = encode_record(rec.family, &rec.key, rec.seq, &rec.image);
    assert_eq!(reencoded, bytes);
    assert_eq!(snapshot_file_name(&rec.key), snapshot_file_name(b"alpha"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_truncation_boundary_is_a_typed_error() {
    let dir = tmp_dir("truncate");
    let bytes = committed_record(&dir, b"trunc", 500);
    assert!(decode_record(&bytes).is_ok());
    for len in 0..bytes.len() {
        let res = decode_record(&bytes[..len]);
        assert!(
            res.is_err(),
            "a {len}-byte prefix of a {}-byte record must not decode",
            bytes.len()
        );
        // The error is typed and printable — no panics, no opaque slots.
        let _ = res.unwrap_err().to_string();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_single_byte_mutation_is_a_typed_error() {
    let dir = tmp_dir("mutate");
    let bytes = committed_record(&dir, b"mutate", 500);
    assert!(decode_record(&bytes).is_ok());
    // The CRC covers bytes [0..24] ++ key ++ image and is itself stored
    // at [24..28], so no single-byte change anywhere can survive: it
    // either trips an earlier structural check or the CRC.
    for offset in 0..bytes.len() {
        for flip in [0xFFu8, 0x01] {
            let mut doctored = bytes.clone();
            doctored[offset] ^= flip;
            let res = decode_record(&doctored);
            assert!(
                res.is_err(),
                "byte {offset} ^ {flip:#04x} must not decode: {res:?}"
            );
            let _ = res.unwrap_err().to_string();
        }
    }
    // Appended garbage is a length mismatch, not a trailing-ignored pass.
    let mut extended = bytes.clone();
    extended.push(0);
    assert!(matches!(
        decode_record(&extended),
        Err(RecoverError::LengthMismatch { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_staging_write_never_touches_the_committed_snapshot() {
    let dir = tmp_dir("torn");
    let donor_dir = tmp_dir("torn-donor");
    let donor = committed_record(&donor_dir, b"torn", 300);
    let image = decode_record(&donor).unwrap().image;
    let _ = std::fs::remove_dir_all(&donor_dir);

    let store = DirStore::new(&dir).expect("open store");
    let name = snapshot_file_name(b"torn");
    let old = encode_record(SketchFamily::Theta, b"torn", 7, &image);
    store.put(&name, &old, false).expect("commit old snapshot");

    // A kill mid-checkpoint leaves a partial staging file at an
    // arbitrary length. Simulate every such length: the next boot must
    // discard the staging file and serve the committed record untouched.
    let new = encode_record(SketchFamily::Theta, b"torn", 9, &image);
    for len in 0..new.len() {
        let staging = dir.join(format!("{name}{TMP_SUFFIX}"));
        std::fs::write(&staging, &new[..len]).expect("plant torn staging file");
        let reopened = DirStore::new(&dir).expect("reopen store");
        assert!(!staging.exists(), "stale staging file must be removed");
        let got = reopened.get(&name).expect("committed snapshot readable");
        assert_eq!(got, old, "torn write at {len} bytes altered the snapshot");
        assert_eq!(reopened.list().unwrap(), vec![name.clone()]);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A [`SnapshotStore`] whose writes fail on demand (disk-full shape).
struct FailingStore {
    inner: DirStore,
    fail: AtomicBool,
}

impl SnapshotStore for FailingStore {
    fn put(&self, name: &str, bytes: &[u8], fsync_file: bool) -> io::Result<()> {
        if self.fail.load(Ordering::Acquire) {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC",
            ));
        }
        self.inner.put(name, bytes, fsync_file)
    }
    fn sync_dir(&self) -> io::Result<()> {
        if self.fail.load(Ordering::Acquire) {
            return Err(io::Error::other("injected fsync failure"));
        }
        self.inner.sync_dir()
    }
    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }
    fn get(&self, name: &str) -> io::Result<Vec<u8>> {
        self.inner.get(name)
    }
    fn quarantine(&self, name: &str) -> io::Result<()> {
        self.inner.quarantine(name)
    }
    fn remove(&self, name: &str) -> io::Result<()> {
        self.inner.remove(name)
    }
}

#[test]
fn failing_store_is_counted_and_never_fatal() {
    let dir = tmp_dir("enospc");
    let store = Arc::new(FailingStore {
        inner: DirStore::new(&dir).expect("open store"),
        fail: AtomicBool::new(true),
    });
    let cfg = ServerConfig {
        snapshot_interval: Duration::from_millis(20),
        fsync_policy: FsyncPolicy::Always,
        ..ServerConfig::default()
    };
    let handle = serve_with_store(cfg, Some(store.clone() as Arc<dyn SnapshotStore>))
        .expect("serve with failing store");
    let mut c = connect(&handle);
    let data: Vec<u64> = (0..2_000).collect();
    ingest_all(&mut c, SketchFamily::Theta, b"doomed", &data);

    // The checkpointer keeps trying, keeps failing, and the server
    // keeps serving the whole time.
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.stats().snapshot_errors == 0 {
        assert!(Instant::now() < deadline, "no snapshot error counted");
        std::thread::sleep(Duration::from_millis(10));
    }
    let count = observed_count(&mut c, SketchFamily::Theta, b"doomed");
    assert!((count - 2_000.0).abs() / 2_000.0 < 0.05, "count {count}");

    // Once the disk heals, the checkpointer commits without a restart.
    store.fail.store(false, Ordering::Release);
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.stats().snapshots_written == 0 {
        assert!(Instant::now() < deadline, "no snapshot after heal");
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(c);
    let drain = handle.shutdown();
    assert_eq!(drain.leaked_threads, 0);
    assert!(dir.join(snapshot_file_name(b"doomed")).exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_restart_recovers_every_family_exactly() {
    let dir = tmp_dir("restart");
    let per_stream = 3_000u64;
    {
        let handle = serve(durable_config(&dir)).expect("serve first life");
        let mut c = connect(&handle);
        for (i, family) in FAMILIES.iter().enumerate() {
            let key = format!("life-{i}").into_bytes();
            let data: Vec<u64> = (0..per_stream).map(|v| v + i as u64 * per_stream).collect();
            ingest_all(&mut c, *family, &key, &data);
        }
        // The v1 default stream is durable too.
        let reply = c.ingest(&(0..500u64).collect::<Vec<_>>()).unwrap();
        assert!(matches!(reply, Reply::Ack { .. }));
        drop(c);
        let drain = handle.shutdown();
        assert_eq!(drain.leaked_threads, 0);
    }

    let handle = serve(durable_config(&dir)).expect("serve second life");
    let outcome = handle.recovery_outcome().expect("durable tier recovers");
    assert_eq!(
        outcome.recovered, 5,
        "4 keyed streams + default: {outcome:?}"
    );
    assert_eq!(outcome.quarantined, 0);
    assert_eq!(handle.stats().streams_recovered, 5);

    let mut c = connect(&handle);
    for (i, family) in FAMILIES.iter().enumerate() {
        let key = format!("life-{i}").into_bytes();
        let got = observed_count(&mut c, *family, &key);
        let relerr = (got - per_stream as f64).abs() / per_stream as f64;
        // A graceful drain checkpoints after quiescing, so Q/F counts
        // are exact and Θ/HLL sit inside their estimator envelope.
        assert!(
            relerr < 0.05,
            "{family:?} recovered {got}, want {per_stream}"
        );
    }
    // v1 family byte 0 = the default stream, fanned in like a v2 query
    // — recovered state must be visible to legacy clients too.
    match c.query_estimate(0).unwrap() {
        Reply::Estimate { value, .. } => {
            assert!(
                (value - 500.0).abs() / 500.0 < 0.05,
                "default stream {value}"
            )
        }
        other => panic!("default estimate: {other:?}"),
    }

    // Recovered state must itself survive the next restart: the
    // checkpointer re-persists the recovered image, not just live items.
    for info in handle.list_streams() {
        assert_eq!(info.snapshot_lag, 0, "{:?}", info.key);
    }
    drop(c);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshots_quarantine_and_valid_streams_still_serve() {
    let dir = tmp_dir("quarantine");
    {
        let handle = serve(durable_config(&dir)).expect("serve");
        let mut c = connect(&handle);
        ingest_all(
            &mut c,
            SketchFamily::Theta,
            b"good",
            &(0..1_000).collect::<Vec<_>>(),
        );
        ingest_all(
            &mut c,
            SketchFamily::Hll,
            b"bad",
            &(0..1_000).collect::<Vec<_>>(),
        );
        drop(c);
        handle.shutdown();
    }
    // Corrupt one committed record and plant one garbage file.
    let bad_path = dir.join(snapshot_file_name(b"bad"));
    let mut bad = std::fs::read(&bad_path).unwrap();
    let mid = bad.len() / 2;
    bad[mid] ^= 0xFF;
    std::fs::write(&bad_path, &bad).unwrap();
    std::fs::write(dir.join(format!("s-00{SNAP_SUFFIX}")), b"not a snapshot").unwrap();

    let handle = serve(durable_config(&dir)).expect("boot past corruption");
    let outcome = handle.recovery_outcome().expect("outcome");
    assert_eq!(outcome.quarantined, 2, "{outcome:?}");
    assert_eq!(outcome.failures.len(), 2);
    assert_eq!(handle.stats().records_quarantined, 2);

    // Quarantined files are kept for forensics, never rescanned.
    let quarantined = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .filter(|n| n.ends_with(QUARANTINE_SUFFIX))
        .count();
    assert_eq!(quarantined, 2);

    let mut c = connect(&handle);
    let good = observed_count(&mut c, SketchFamily::Theta, b"good");
    assert!(
        (good - 1_000.0).abs() / 1_000.0 < 0.05,
        "good stream {good}"
    );
    // The corrupted stream was never registered: typed NACK, no panic,
    // no silently empty stream.
    match c.query_stream_estimate(SketchFamily::Hll, b"bad").unwrap() {
        Reply::Nack { code, .. } => assert_eq!(code, NackCode::UnknownStream),
        other => panic!("corrupt stream must be unknown: {other:?}"),
    }
    drop(c);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bind_conflict_is_a_typed_startup_error() {
    let blocker = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = blocker.local_addr().unwrap();
    let cfg = ServerConfig {
        addr: addr.to_string(),
        ..ServerConfig::default()
    };
    match serve(cfg) {
        Err(ServeError::Bind(e)) => assert_eq!(e.kind(), io::ErrorKind::AddrInUse),
        Err(other) => panic!("want typed Bind error, got {other:?}"),
        Ok(handle) => {
            handle.shutdown();
            panic!("bind conflict must fail startup");
        }
    }
}

#[test]
fn replica_breaker_opens_on_dead_peer_and_is_reported() {
    // A port that was bound and released: connects fail fast.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let cfg = ServerConfig {
        replica_peer: Some(dead.to_string()),
        replica_interval: Duration::from_millis(15),
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(100),
        ..ServerConfig::default()
    };
    let handle = serve(cfg).expect("serve");
    // Ingest so the pusher has something to ship.
    let mut c = connect(&handle);
    ingest_all(
        &mut c,
        SketchFamily::Theta,
        b"pushme",
        &(0..100).collect::<Vec<_>>(),
    );

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = handle.stats();
        if stats.replica_breaker == Some(BreakerState::Open) && stats.replica_push_errors >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "breaker never opened: {:?}, {} errors",
            stats.replica_breaker,
            stats.replica_push_errors
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The broken peer link never affects the serving path.
    let count = observed_count(&mut c, SketchFamily::Theta, b"pushme");
    assert!(count > 90.0, "serving path degraded: {count}");
    drop(c);
    handle.shutdown();

    // Without a peer there is no breaker to report.
    let plain = serve(ServerConfig::default()).expect("serve plain");
    assert_eq!(plain.stats().replica_breaker, None);
    plain.shutdown();
}

#[test]
fn retiring_a_stream_removes_its_snapshot() {
    let dir = tmp_dir("retire");
    {
        let handle = serve(durable_config(&dir)).expect("serve");
        let mut c = connect(&handle);
        ingest_all(
            &mut c,
            SketchFamily::Theta,
            b"gone",
            &(0..400).collect::<Vec<_>>(),
        );
        let path = dir.join(snapshot_file_name(b"gone"));
        let deadline = Instant::now() + Duration::from_secs(5);
        while !path.exists() {
            assert!(Instant::now() < deadline, "stream never checkpointed");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(handle.retire_stream(b"gone"));
        assert!(!path.exists(), "retire must delete the snapshot");
        drop(c);
        handle.shutdown();
    }
    // The retired stream must not resurrect on the next boot.
    let handle = serve(durable_config(&dir)).expect("serve second life");
    let mut c = connect(&handle);
    match c
        .query_stream_estimate(SketchFamily::Theta, b"gone")
        .unwrap()
    {
        Reply::Nack { code, .. } => assert_eq!(code, NackCode::UnknownStream),
        other => panic!("retired stream resurrected: {other:?}"),
    }
    drop(c);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
