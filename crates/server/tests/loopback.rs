//! End-to-end loopback tests: a real server on 127.0.0.1, real TCP
//! clients, the full frame protocol. This is the CI smoke test for the
//! network tier's happy paths plus its headline fault story (worker
//! panic → breaker → recovery → graceful drain).

use fcds_server::client::{Client, Reply};
use fcds_server::frame::{FrameType, NackCode};
use fcds_server::{serve, BreakerState, ServerConfig};
use fcds_sketches::wire::{peek, SketchFamily, WireEncode};
use std::time::Duration;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(5);

fn test_config() -> ServerConfig {
    ServerConfig {
        frame_deadline: Duration::from_millis(300),
        ..ServerConfig::default()
    }
}

fn connect(handle: &fcds_server::ServerHandle) -> Client {
    Client::connect(handle.local_addr(), CLIENT_TIMEOUT).expect("connect")
}

#[test]
fn ping_pong_roundtrip() {
    let handle = serve(test_config()).unwrap();
    let mut c = connect(&handle);
    let reply = c.ping().unwrap();
    assert!(matches!(reply, Reply::Pong { .. }));
    let report = handle.shutdown();
    assert_eq!(report.leaked_threads, 0);
}

#[test]
fn ingest_from_two_clients_reaches_the_live_engine() {
    let handle = serve(test_config()).unwrap();
    let n_per_client = 20_000u64;
    let mut c1 = connect(&handle);
    let mut c2 = connect(&handle);
    // Disjoint ranges from two connections, batched.
    for chunk in (0..n_per_client).collect::<Vec<_>>().chunks(500) {
        assert!(matches!(c1.ingest(chunk).unwrap(), Reply::Ack { .. }));
    }
    for chunk in (n_per_client..2 * n_per_client)
        .collect::<Vec<_>>()
        .chunks(500)
    {
        assert!(matches!(c2.ingest(chunk).unwrap(), Reply::Ack { .. }));
    }
    // Workers flush after every batch, so once the queues drain the
    // estimate must reflect every acked item. Poll briefly for the
    // queues to empty.
    let expect = (2 * n_per_client) as f64;
    let mut estimate = 0.0;
    for _ in 0..100 {
        match c1.query_estimate(0).unwrap() {
            Reply::Estimate { value, .. } => estimate = value,
            other => panic!("unexpected reply: {other:?}"),
        }
        if (estimate - expect).abs() / expect < 0.05 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        (estimate - expect).abs() / expect < 0.05,
        "estimate {estimate} should be within 5% of {expect}"
    );
    let report = handle.shutdown();
    assert_eq!(report.stats.ingest_items, 2 * n_per_client);
    assert_eq!(report.leaked_threads, 0);
    assert_eq!(report.workers_panicked, 0);
}

#[test]
fn empty_ingest_is_acked() {
    let handle = serve(test_config()).unwrap();
    let mut c = connect(&handle);
    assert!(matches!(c.ingest(&[]).unwrap(), Reply::Ack { .. }));
    handle.shutdown();
}

#[test]
fn merge_store_accepts_and_fans_in_wire_images() {
    let handle = serve(test_config()).unwrap();
    let mut c = connect(&handle);

    // Two Θ images over disjoint ranges, built locally.
    let mut s1 = fcds_sketches::theta::QuickSelectThetaSketch::new(12, 0).unwrap();
    let mut s2 = fcds_sketches::theta::QuickSelectThetaSketch::new(12, 0).unwrap();
    for i in 0..30_000u64 {
        s1.update(i);
        s2.update(i + 30_000);
    }
    let img1 = s1.compact().to_wire_bytes();
    let img2 = s2.compact().to_wire_bytes();
    assert!(matches!(c.merge(&img1).unwrap(), Reply::Ack { .. }));
    assert!(matches!(c.merge(&img2).unwrap(), Reply::Ack { .. }));

    // The union estimate covers both.
    match c.query_estimate(SketchFamily::Theta.code()).unwrap() {
        Reply::Estimate { value, .. } => {
            assert!(
                (value - 60_000.0).abs() / 60_000.0 < 0.05,
                "union estimate {value} should be near 60000"
            );
        }
        other => panic!("unexpected reply: {other:?}"),
    }

    // And the merged image is itself a valid Θ envelope.
    match c.query_image(SketchFamily::Theta.code()).unwrap() {
        Reply::Image { bytes, .. } => {
            let peeked = peek(&bytes, u64::MAX).unwrap();
            assert_eq!(peeked.family, SketchFamily::Theta);
        }
        other => panic!("unexpected reply: {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn estimate_query_on_unsupported_family_gets_typed_nack() {
    let handle = serve(test_config()).unwrap();
    let mut c = connect(&handle);
    let reply = c.query_estimate(SketchFamily::Quantiles.code()).unwrap();
    assert_eq!(reply.nack_code(), Some(NackCode::Unsupported));
    // The connection stays usable.
    assert!(matches!(c.ping().unwrap(), Reply::Pong { .. }));
    handle.shutdown();
}

#[test]
fn estimate_query_on_empty_merge_store_gets_wire_nack() {
    let handle = serve(test_config()).unwrap();
    let mut c = connect(&handle);
    let reply = c.query_estimate(SketchFamily::Theta.code()).unwrap();
    assert_eq!(reply.nack_code(), Some(NackCode::Wire));
    handle.shutdown();
}

#[test]
fn slow_client_is_cut_off_at_the_frame_deadline() {
    let cfg = ServerConfig {
        frame_deadline: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let handle = serve(cfg).unwrap();
    let mut c = connect(&handle);
    // Send a frame header declaring 64 payload bytes, then stall.
    let full = fcds_server::frame::encode_frame(FrameType::Ingest, 9, &[0u8; 64]);
    c.send_raw(&full[..20]).unwrap();
    // The server must NACK Timeout (best effort) and close.
    match c.read_reply() {
        Ok(reply) => assert_eq!(reply.nack_code(), Some(NackCode::Timeout)),
        // Closing without the courtesy NACK is also within contract.
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
    }
    let report = handle.shutdown();
    assert_eq!(report.stats.read_timeouts, 1);
    assert_eq!(report.leaked_threads, 0);
}

#[test]
fn shutdown_frame_flips_drain_and_refuses_new_ingest() {
    let handle = serve(test_config()).unwrap();
    let mut c = connect(&handle);
    assert!(matches!(c.ingest(&[1, 2, 3]).unwrap(), Reply::Ack { .. }));
    assert!(matches!(c.request_shutdown().unwrap(), Reply::Ack { .. }));
    assert!(handle.drain_requested());
    // Ingest and merge are now refused with Draining; queries still work.
    assert_eq!(
        c.ingest(&[4]).unwrap().nack_code(),
        Some(NackCode::Draining)
    );
    assert!(matches!(c.ping().unwrap(), Reply::Pong { .. }));
    let report = handle.shutdown();
    assert_eq!(report.stats.ingest_items, 3);
    assert_eq!(
        report.workers_flushed as u64 + report.stats.worker_panics,
        2
    );
    assert_eq!(report.leaked_threads, 0);
}

#[test]
fn worker_panic_is_isolated_breaker_trips_and_server_survives() {
    // One worker, poisoned item → the panic kills the only ingest
    // backend. The server must keep serving queries and NACK ingest
    // with a typed error, never hang or crash.
    let cfg = ServerConfig {
        ingest_workers: 1,
        fault_panic_on: Some(0xDEAD_BEEF),
        ..test_config()
    };
    let handle = serve(cfg).unwrap();
    let mut c = connect(&handle);
    assert!(matches!(c.ingest(&[1, 2, 3]).unwrap(), Reply::Ack { .. }));

    // Poison batch: accepted into the queue (the panic happens in the
    // worker, asynchronously).
    assert!(matches!(
        c.ingest(&[0xDEAD_BEEF]).unwrap(),
        Reply::Ack { .. }
    ));

    // Subsequent ingest eventually sees the dead backend: either the
    // queue NACK (Internal — all workers dead) once the panic has been
    // observed, or transiently Ack/Overload while the worker is dying.
    let mut saw_internal = false;
    for _ in 0..100 {
        match c.ingest(&[7]).unwrap() {
            Reply::Nack {
                code: NackCode::Internal,
                ..
            } => {
                saw_internal = true;
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(saw_internal, "dead worker must surface as Internal NACK");

    // Queries still served; the connection and server survived.
    assert!(matches!(c.ping().unwrap(), Reply::Pong { .. }));
    assert!(handle.is_degraded());

    let report = handle.shutdown();
    assert_eq!(report.stats.worker_panics, 1);
    assert_eq!(report.workers_panicked, 1);
    assert_eq!(report.leaked_threads, 0);
}

#[test]
fn backpressure_sheds_with_overload_nack_when_queues_fill() {
    // Tiny queues + a poisoned worker stuck panicking? No — simpler:
    // stall the single worker by flooding it faster than it can drain.
    // queue_depth 1 and large batches make the race easy to hit.
    let cfg = ServerConfig {
        ingest_workers: 1,
        queue_depth: 1,
        ..test_config()
    };
    let handle = serve(cfg).unwrap();
    let mut c = connect(&handle);
    let batch: Vec<u64> = (0..4096).collect();
    let mut saw_overload = false;
    for _ in 0..2000 {
        match c.ingest(&batch).unwrap() {
            Reply::Nack { code, .. } => {
                assert!(
                    code == NackCode::Overload || code == NackCode::BreakerOpen,
                    "sheds must be typed Overload/BreakerOpen, got {code:?}"
                );
                saw_overload = true;
                break;
            }
            Reply::Ack { .. } => {}
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    assert!(saw_overload, "a 1-deep queue must shed under a flood");
    let report = handle.shutdown();
    assert!(report.stats.sheds >= 1);
    // Shed batches are NOT silently dropped-and-acked: every shed has a
    // matching NACK.
    assert!(report.stats.nacks >= report.stats.sheds);
    assert_eq!(report.leaked_threads, 0);
}

#[test]
fn breaker_standalone_recovers_through_half_open() {
    // The breaker unit covers the state machine; this drills the
    // recovery sequence the server relies on end to end.
    let b = fcds_server::CircuitBreaker::new(2, Duration::from_millis(50));
    b.record_failure();
    b.record_failure();
    assert_eq!(b.state(), BreakerState::Open);
    assert!(!b.allow());
    std::thread::sleep(Duration::from_millis(60));
    assert!(b.allow(), "cooldown elapsed: half-open probe admitted");
    b.record_success();
    assert_eq!(b.state(), BreakerState::Closed);
}

#[test]
fn drain_flushes_all_acked_items_into_the_final_estimate() {
    let handle = serve(test_config()).unwrap();
    let mut c = connect(&handle);
    let mut acked = 0u64;
    for chunk in (0..10_000u64).collect::<Vec<_>>().chunks(250) {
        if matches!(c.ingest(chunk).unwrap(), Reply::Ack { .. }) {
            acked += chunk.len() as u64;
        }
    }
    let report = handle.shutdown();
    assert_eq!(report.workers_flushed, 2, "both workers must flush clean");
    assert_eq!(report.stats.ingest_items, acked);
    let expect = acked as f64;
    assert!(
        (report.final_estimate - expect).abs() / expect < 0.05,
        "final estimate {} should cover all {acked} acked items",
        report.final_estimate
    );
    assert_eq!(report.leaked_threads, 0);
}
