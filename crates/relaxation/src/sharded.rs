//! The r-relaxation under **sharding** — why `r = 2Nb` is independent of
//! the shard count `K`.
//!
//! The sharded engine splits the global sketch into `K` independent
//! instances; each of the `N` writers is keyed onto exactly one shard and
//! queries merge all shard images. Theorem 1's accounting carries over
//! unchanged because the relaxation is carried by *writers*, not shards:
//! a query can miss at most the updates sitting in writers' in-flight
//! buffers, and each writer owns at most two buffers of size `b` (one
//! handed off, one being filled) no matter which shard it feeds. Summing
//! over writers gives `r = 2Nb` for any `K`; with double buffering
//! disabled each writer owns one in-flight buffer and `r = Nb`.
//!
//! For the Θ sketch the query-time merge is the *untrimmed union*
//! ([`fcds_sketches::theta::untrimmed_union`]): joint `Θ = min Θᵢ` and
//! every retained hash below it. Because each shard's retained set is
//! exactly `{h ∈ seenᵢ : h < Θᵢ}` and `Θ ≤ Θᵢ`, the union's retained set
//! is exactly `{h ∈ ∪ seenᵢ : h < Θ}` — the state of a single sequential
//! sketch with threshold `Θ` over the concatenated stream, minus at most
//! the `r` in-flight updates. A merged observation therefore satisfies
//! the *same* admissibility conditions
//! [`ThetaChecker`](crate::checker::ThetaChecker) tests for a
//! single-global execution, which is what lets one checker serve both
//! layouts. [`merged_observation`] is the executable specification of
//! that merge; `fcds-core`'s query path computes the identical triple.
//!
//! ## Throttled image publication (`image_every = M`)
//!
//! The engine may deliberately publish a shard's mergeable image only on
//! every `M`-th merge (its cheap per-merge view — Θ's seqlock triple —
//! still publishes every merge). This widens what a *merged query* may
//! miss: besides the writers' in-flight buffers (`≤ 2b` per writer),
//! each shard may hold up to `M − 1` merges' worth of updates that are
//! merged into its global but absent from its published image — at most
//! `(M − 1)·b` per shard, because a merge consumes one local buffer of
//! at most `b` updates. Hidden updates from the two sources are
//! disjoint (a buffered update is by definition not yet merged), so the
//! totals add:
//!
//! > `r_query = 2Nb + K·(M − 1)·b`
//!
//! computed by [`sharded_query_relaxation`] (the executable reference
//! mirrored by `fcds-core`'s `ConcurrencyConfig::query_relaxation`).
//! `M = 1` recovers `r = 2Nb` exactly; quiescing republishes skipped
//! images, so a quiesced engine is admissible at `r = 0` for any `M`.

use crate::checker::ThetaObservation;
use fcds_sketches::error::Result;
use fcds_sketches::theta::{untrimmed_union, CompactThetaSketch, ThetaRead};

/// Merges per-shard compact Θ images into the query observation a
/// sharded engine publishes: joint `Θ = min Θᵢ`, retained = all distinct
/// hashes below it, estimate = `retained / Θ`.
///
/// This mirrors `fcds-core`'s sharded Θ query path exactly, so checker
/// tests can validate merged observations against the full interleaved
/// stream with the ordinary `r = 2Nb` bound.
///
/// # Errors
///
/// Propagates [`untrimmed_union`]'s errors (seed mismatch, empty input).
pub fn merged_observation<'a>(
    shards: impl IntoIterator<Item = &'a CompactThetaSketch>,
) -> Result<ThetaObservation> {
    let union = untrimmed_union(shards)?;
    Ok(ThetaObservation {
        theta: union.theta(),
        retained: union.retained() as u64,
        estimate: union.estimate(),
    })
}

/// The staleness bound a merged query satisfies when image publication
/// is throttled to every `image_every`-th merge: the writer-side
/// relaxation `r` (use `2Nb` with double buffering, `Nb` without) plus
/// `(image_every − 1)·b` merged-but-unpublished updates per shard.
///
/// This is the executable reference for the accounting derived in the
/// module docs; `fcds-core`'s `ConcurrencyConfig::query_relaxation`
/// computes the identical value from its configuration.
pub fn sharded_query_relaxation(r: u64, shards: usize, image_every: u64, b: u64) -> u64 {
    assert!(shards >= 1, "need at least one shard");
    assert!(image_every >= 1, "image_every must be ≥ 1");
    if shards == 1 {
        // A single-shard engine publishes no image at all; queries read
        // the per-merge view, which the throttle never touches.
        return r;
    }
    r + shards as u64 * (image_every - 1) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::ThetaChecker;
    use fcds_sketches::hash::Hashable;
    use fcds_sketches::theta::{normalize_hash, QuickSelectThetaSketch};

    const SEED: u64 = 77;

    fn hashed_stream(n: u64) -> Vec<u64> {
        (0..n)
            .map(|i| normalize_hash(i.hash_with_seed(SEED)))
            .collect()
    }

    /// Feeds `stream[..preceding]` round-robin into `k_shards` sequential
    /// sketches, optionally withholding the last `hide_per_shard` updates
    /// of each shard (the "in-flight buffer" of its writer).
    fn shard_images(
        stream: &[u64],
        preceding: usize,
        k_shards: usize,
        lg_k: u8,
        hide_per_shard: usize,
    ) -> Vec<CompactThetaSketch> {
        let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); k_shards];
        for (i, &h) in stream[..preceding].iter().enumerate() {
            per_shard[i % k_shards].push(h);
        }
        per_shard
            .into_iter()
            .map(|hashes| {
                let mut s = QuickSelectThetaSketch::new(lg_k, SEED).unwrap();
                let visible = hashes.len().saturating_sub(hide_per_shard);
                for &h in &hashes[..visible] {
                    s.update_hash(h);
                }
                s.compact()
            })
            .collect()
    }

    #[test]
    fn merged_shards_are_a_0_relaxation_at_quiescence() {
        // With nothing in flight, the merged observation must pass the
        // checker with r = 0 — the merge itself adds no relaxation.
        let stream = hashed_stream(60_000);
        for k_shards in [1usize, 2, 4] {
            let images = shard_images(&stream, stream.len(), k_shards, 6, 0);
            let obs = merged_observation(images.iter()).unwrap();
            ThetaChecker::new(64, 0)
                .check_at(&stream, stream.len(), &obs)
                .unwrap_or_else(|v| panic!("K = {k_shards}: {v}"));
        }
    }

    #[test]
    fn in_flight_buffers_stay_within_2nb_for_any_shard_count() {
        // N = 4 writers with b = 8: each writer may hide up to 2b = 16
        // updates, r = 2Nb = 64 in total — regardless of K. Model the
        // worst case by withholding 2b updates per writer (here one
        // writer per shard ⇒ hide 2b per shard, total ≤ r for K ≤ N).
        let stream = hashed_stream(80_000);
        let b = 8usize;
        let writers = 4usize;
        let r = (2 * writers * b) as u64;
        for k_shards in [1usize, 2, 4] {
            // Round-robin across writers; writers map onto shards evenly,
            // so hiding (writers / k_shards) · 2b per shard models all
            // writers' in-flight buffers.
            let hide_per_shard = (writers / k_shards) * 2 * b;
            let images = shard_images(&stream, stream.len(), k_shards, 6, hide_per_shard);
            let obs = merged_observation(images.iter()).unwrap();
            ThetaChecker::new(64, r)
                .check_at(&stream, stream.len(), &obs)
                .unwrap_or_else(|v| panic!("K = {k_shards}: {v}"));
        }
    }

    #[test]
    fn hiding_more_than_r_is_rejected() {
        // Withholding more than r *relevant* updates must be caught: in
        // exact mode (k larger than the stream) every hidden update is
        // below Θ = 1, so hiding 4·500 = 2000 > r = 64 of them leaves
        // the merged retained count short of C(Θ) − r.
        let stream = hashed_stream(8_000);
        let r = 64u64;
        let images = shard_images(&stream, stream.len(), 4, 12, 500);
        let obs = merged_observation(images.iter()).unwrap();
        assert!(
            ThetaChecker::new(4096, r)
                .check_at(&stream, stream.len(), &obs)
                .is_err(),
            "2000 hidden updates accepted under r = 64"
        );
    }

    #[test]
    fn throttled_images_stay_within_the_adjusted_bound() {
        // N = 4 writers, b = 8, K shards, image_every = M: each shard's
        // published image may miss its writers' 2b in-flight updates
        // *plus* (M − 1)·b merged-but-unpublished ones. The merged
        // observation must be admissible under the adjusted bound.
        let stream = hashed_stream(80_000);
        let b = 8usize;
        let writers = 4usize;
        let r = (2 * writers * b) as u64;
        for m in [1u64, 4] {
            for k_shards in [1usize, 2, 4] {
                let r_query = sharded_query_relaxation(r, k_shards, m, b as u64);
                let image_lag = if k_shards > 1 {
                    (m as usize - 1) * b
                } else {
                    0
                };
                let hide_per_shard = (writers / k_shards) * 2 * b + image_lag;
                let images = shard_images(&stream, stream.len(), k_shards, 6, hide_per_shard);
                let obs = merged_observation(images.iter()).unwrap();
                ThetaChecker::new(64, r_query)
                    .check_at(&stream, stream.len(), &obs)
                    .unwrap_or_else(|v| panic!("K = {k_shards}, M = {m}: {v}"));
            }
        }
    }

    #[test]
    fn image_staleness_beyond_the_adjusted_bound_is_rejected() {
        // Hiding clearly more than (M − 1)·b extra per shard must fail
        // the adjusted bound (exact mode: every hidden update counts).
        let stream = hashed_stream(8_000);
        let b = 8u64;
        let writers = 4usize;
        let k_shards = 4usize;
        let m = 4u64;
        let r_query = sharded_query_relaxation(2 * writers as u64 * b, k_shards, m, b);
        // 500 hidden per shard = 2000 total ≫ r_query = 64 + 96 = 160.
        let images = shard_images(&stream, stream.len(), k_shards, 12, 500);
        let obs = merged_observation(images.iter()).unwrap();
        assert!(
            ThetaChecker::new(4096, r_query)
                .check_at(&stream, stream.len(), &obs)
                .is_err(),
            "2000 hidden updates accepted under r_query = {r_query}"
        );
    }

    #[test]
    fn query_relaxation_reference_values() {
        // M = 1 recovers r for any K; K = 1 ignores M entirely.
        assert_eq!(sharded_query_relaxation(64, 4, 1, 8), 64);
        assert_eq!(sharded_query_relaxation(64, 1, 4, 8), 64);
        // K = 2, M = 4, b = 8: r + 2·3·8.
        assert_eq!(sharded_query_relaxation(64, 2, 4, 8), 64 + 48);
    }

    #[test]
    fn merged_observation_of_single_shard_is_the_shard() {
        let stream = hashed_stream(30_000);
        let mut s = QuickSelectThetaSketch::new(6, SEED).unwrap();
        for &h in &stream {
            s.update_hash(h);
        }
        let c = s.compact();
        let obs = merged_observation([&c]).unwrap();
        assert_eq!(obs.theta, c.theta());
        assert_eq!(obs.retained, c.retained() as u64);
        assert_eq!(obs.estimate, c.estimate());
    }

    #[test]
    fn mid_stream_windowed_check_accepts_merged_observations() {
        // A merged observation taken at prefix p must be admissible in
        // any window containing p, mirroring how concurrent queries are
        // validated.
        let stream = hashed_stream(50_000);
        let p = 30_000usize;
        let images = shard_images(&stream, p, 2, 6, 0);
        let obs = merged_observation(images.iter()).unwrap();
        ThetaChecker::new(64, 0)
            .check_window(&stream, 29_000, 31_000, &obs)
            .unwrap();
    }
}
