//! Sequential histories and the r-relaxation of Definition 2.
//!
//! A *sequential history* is a sequence of operations (each invocation
//! immediately followed by its response). Definition 2 calls a sequential
//! history `H` an **r-relaxation** of a sequential history `H′` if
//!
//! 1. `H` is comprised of all but at most `r` of the invocations in `H′`
//!    (and their responses), and
//! 2. each invocation in `H` is preceded by all but at most `r` of the
//!    invocations that precede the same invocation in `H′`.
//!
//! Intuitively: up to `r` operations may be dropped, and every operation
//! may be overtaken by at most `r` operations that should have preceded
//! it. Figure 2 of the paper shows a 1-relaxation; the unit tests below
//! reproduce it.

use std::collections::HashMap;

/// An operation in a sketch history.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Op {
    /// `S.update(a)`; the payload identifies the item.
    Update(u64),
    /// `S.query(arg)` with its response; the payload is an opaque result
    /// identifier (queries with different results are different ops).
    Query(u64),
}

/// A sequential history: operations with unique identifiers, in order.
///
/// Identifiers tie the "same invocation" across `H` and `H′` (the
/// definition compares invocations, not just payloads).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    ops: Vec<(u64, Op)>,
}

impl History {
    /// The empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Appends an operation with the given unique id.
    ///
    /// # Panics
    ///
    /// Panics if the id is already present.
    pub fn push(&mut self, id: u64, op: Op) {
        assert!(
            !self.ops.iter().any(|(i, _)| *i == id),
            "duplicate operation id {id}"
        );
        self.ops.push((id, op));
    }

    /// Builder-style [`Self::push`].
    pub fn with(mut self, id: u64, op: Op) -> Self {
        self.push(id, op);
        self
    }

    /// The operations in order.
    pub fn ops(&self) -> &[(u64, Op)] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Decides whether `self` is an r-relaxation of `other` (`self` = H,
    /// `other` = H′), per Definition 2.
    ///
    /// Runs in O(|H′|²) — intended for tests and small recorded histories.
    pub fn is_r_relaxation_of(&self, other: &History, r: usize) -> bool {
        // Positions of every op in H′ and in H.
        let pos_prime: HashMap<u64, usize> = other
            .ops
            .iter()
            .enumerate()
            .map(|(i, (id, _))| (*id, i))
            .collect();
        let pos_h: HashMap<u64, usize> = self
            .ops
            .iter()
            .enumerate()
            .map(|(i, (id, _))| (*id, i))
            .collect();

        // Condition 0: every op of H appears in H′ with the same payload.
        for (id, op) in &self.ops {
            match pos_prime.get(id) {
                None => return false,
                Some(&j) => {
                    if other.ops[j].1 != *op {
                        return false;
                    }
                }
            }
        }
        // Condition 1: at most r ops of H′ are missing from H.
        if other.len() - self.len() > r {
            return false;
        }
        // Condition 2: for each invocation x in H, at most r of the
        // invocations preceding x in H′ fail to precede it in H
        // (either dropped or reordered after x).
        for (id_x, _) in &self.ops {
            let px_prime = pos_prime[id_x];
            let px_h = pos_h[id_x];
            let mut overtaken = 0usize;
            for (id_y, _) in &other.ops[..px_prime] {
                match pos_h.get(id_y) {
                    None => overtaken += 1,                       // dropped
                    Some(&py_h) if py_h > px_h => overtaken += 1, // reordered
                    _ => {}
                }
            }
            if overtaken > r {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(id: u64) -> (u64, Op) {
        (id, Op::Update(id))
    }

    fn hist(ids: &[u64]) -> History {
        let mut h = History::new();
        for &id in ids {
            h.push(id, Op::Update(id));
        }
        h
    }

    #[test]
    fn history_is_its_own_0_relaxation() {
        let h = hist(&[1, 2, 3, 4]);
        assert!(h.is_r_relaxation_of(&h, 0));
    }

    #[test]
    fn figure2_one_relaxation() {
        // Figure 2's shape: a query overtaken by one update. In H′ the
        // query (id 10) comes after update 1; in H it comes before —
        // i.e., the query "missed" one preceding update.
        let h_prime = History::new()
            .with(1, Op::Update(1))
            .with(10, Op::Query(0))
            .with(2, Op::Update(2));
        let h = History::new()
            .with(10, Op::Query(0))
            .with(1, Op::Update(1))
            .with(2, Op::Update(2));
        assert!(h.is_r_relaxation_of(&h_prime, 1));
        assert!(!h.is_r_relaxation_of(&h_prime, 0));
    }

    #[test]
    fn dropped_op_counts_against_r() {
        let h_prime = hist(&[1, 2, 3]);
        let h = hist(&[1, 3]);
        assert!(h.is_r_relaxation_of(&h_prime, 1));
        assert!(!h.is_r_relaxation_of(&h_prime, 0));
    }

    #[test]
    fn too_many_drops_rejected() {
        let h_prime = hist(&[1, 2, 3, 4, 5]);
        let h = hist(&[1, 5]);
        assert!(h.is_r_relaxation_of(&h_prime, 3));
        assert!(!h.is_r_relaxation_of(&h_prime, 2));
    }

    #[test]
    fn reordering_within_r_accepted() {
        // Element 1 overtaken by 2 and 3: needs r ≥ 2 for op 1? No — the
        // condition counts, per op x, how many of x's H′-predecessors do
        // not precede it in H. For op 1 (no predecessors in H′) it's 0;
        // for ops 2 and 3 the moved op 1 still precedes... check both
        // directions.
        let h_prime = hist(&[1, 2, 3]);
        let h = History::new()
            .with(2, Op::Update(2))
            .with(3, Op::Update(3))
            .with(1, Op::Update(1));
        // Op 1 in H is preceded by nothing in H′-order that matters; ops
        // 2,3 each miss predecessor 1 ⇒ max overtaken = 1.
        assert!(h.is_r_relaxation_of(&h_prime, 1));
        assert!(!h.is_r_relaxation_of(&h_prime, 0));
    }

    #[test]
    fn long_distance_overtaking_needs_large_r() {
        // The last op of H′ moved to the front of H: it misses all n−1
        // predecessors.
        let n = 10u64;
        let h_prime = hist(&(1..=n).collect::<Vec<_>>());
        let mut ids: Vec<u64> = vec![n];
        ids.extend(1..n);
        let h = hist(&ids);
        assert!(h.is_r_relaxation_of(&h_prime, (n - 1) as usize));
        assert!(!h.is_r_relaxation_of(&h_prime, (n - 2) as usize));
    }

    #[test]
    fn foreign_op_rejected() {
        let h_prime = hist(&[1, 2]);
        let h = hist(&[1, 2, 99]);
        assert!(!h.is_r_relaxation_of(&h_prime, 5));
    }

    #[test]
    fn payload_mismatch_rejected() {
        let h_prime = History::new().with(1, Op::Update(1)).with(2, Op::Query(7));
        let h = History::new().with(1, Op::Update(1)).with(2, Op::Query(8));
        assert!(!h.is_r_relaxation_of(&h_prime, 2));
    }

    #[test]
    fn empty_histories() {
        let e = History::new();
        assert!(e.is_r_relaxation_of(&e, 0));
        let h = hist(&[1]);
        assert!(e.is_r_relaxation_of(&h, 1));
        assert!(!e.is_r_relaxation_of(&h, 0));
    }

    #[test]
    #[should_panic(expected = "duplicate operation id")]
    fn duplicate_ids_panic() {
        let mut h = History::new();
        h.push(1, Op::Update(1));
        h.push(1, Op::Update(2));
    }

    #[test]
    fn relaxation_is_monotone_in_r() {
        let h_prime = hist(&[1, 2, 3, 4, 5, 6]);
        let h = History::new()
            .with(2, Op::Update(2))
            .with(1, Op::Update(1))
            .with(4, Op::Update(4))
            .with(6, Op::Update(6))
            .with(5, Op::Update(5));
        // Find the minimal r and check monotonicity above it.
        let min_r = (0..=6)
            .find(|&r| h.is_r_relaxation_of(&h_prime, r))
            .expect("some r works");
        for r in min_r..=6 {
            assert!(h.is_r_relaxation_of(&h_prime, r));
        }
        for r in 0..min_r {
            assert!(!h.is_r_relaxation_of(&h_prime, r));
        }
    }

    #[test]
    fn update_helper_consistency() {
        let (id, op) = upd(3);
        assert_eq!(id, 3);
        assert_eq!(op, Op::Update(3));
    }
}
