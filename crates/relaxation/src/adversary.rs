//! Monte-Carlo simulation of the §6.1 adversaries.
//!
//! The adversary may hide up to `r` updates from every query. The paper
//! shows the worst case is achieved by hiding either `j = 0` or `j = r`
//! elements *smaller than Θ*, which shifts the query's Θ from the k-th to
//! the (k+j)-th order statistic of the hashed stream:
//!
//! * the **strong** adversary `A_s` sees the coin flips (the hash values)
//!   and picks `j ∈ {0, r}` to maximise the realised error `|e − n|`;
//! * the **weak** adversary `A_w` must commit without seeing them and
//!   picks the deterministic error-maximising choice `j = r`.
//!
//! One simulation trial draws `n` iid uniform hashes, extracts `M₍ₖ₎` and
//! `M₍ₖ₊ᵣ₎`, and evaluates the three estimators (sequential, strong,
//! weak). Aggregates over many trials regenerate Table 1; the per-trial
//! samples regenerate the distributions of Figure 4 and the decision
//! regions of Figure 3.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of one simulation: stream size `n`, sketch size `k`,
/// relaxation `r` (Table 1 uses `n = 2¹⁵`, `k = 2¹⁰`, `r = 8`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdversaryParams {
    /// Number of (distinct) stream elements.
    pub n: u64,
    /// Sketch sample size.
    pub k: usize,
    /// Relaxation bound.
    pub r: usize,
}

impl AdversaryParams {
    /// Table 1's parameters: `n = 2¹⁵`, `k = 2¹⁰`, `r = 8`.
    pub fn table1() -> Self {
        AdversaryParams {
            n: 1 << 15,
            k: 1 << 10,
            r: 8,
        }
    }
}

/// The three estimates produced from one random stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialEstimates {
    /// Sequential sketch: `e = (k−1)/M₍ₖ₎`.
    pub sequential: f64,
    /// Strong adversary: `(k−1)/M₍ₖ₊g₎` with `g ∈ {0, r}` maximising the
    /// realised error.
    pub strong: f64,
    /// Weak adversary: `(k−1)/M₍ₖ₊ᵣ₎`.
    pub weak: f64,
    /// The k-th minimum (Θ of the sequential sketch).
    pub m_k: f64,
    /// The (k+r)-th minimum (Θ under the weak adversary).
    pub m_k_r: f64,
}

/// Aggregate statistics of an estimator across trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorStats {
    /// Mean estimate.
    pub mean: f64,
    /// Root-mean-square error relative to `n`:
    /// `√(E[(e−n)²])/n = √(σ²/n² + (E[e]−n)²/n²)` (the paper's RSE
    /// decomposition).
    pub rse: f64,
    /// Relative bias `(E[e] − n)/n`.
    pub relative_bias: f64,
}

/// Full simulation output.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// Parameters used.
    pub params: AdversaryParams,
    /// Number of Monte-Carlo trials.
    pub trials: usize,
    /// Sequential-sketch statistics (Table 1 column 1–2).
    pub sequential: EstimatorStats,
    /// Strong-adversary statistics (Table 1 column 3).
    pub strong: EstimatorStats,
    /// Weak-adversary statistics (Table 1 column 4).
    pub weak: EstimatorStats,
    /// Per-trial estimates (for histograms — Figure 4).
    pub samples: Vec<TrialEstimates>,
}

/// Runs one trial on an explicitly seeded stream of uniform hashes.
pub fn run_trial(params: AdversaryParams, rng: &mut impl Rng) -> TrialEstimates {
    let AdversaryParams { n, k, r } = params;
    assert!(n as usize > k + r, "analysis assumes n > k + r");
    // Draw n uniforms and select the k-th and (k+r)-th minima. A full
    // sort is O(n log n); selecting twice is O(n) amortised.
    let mut hashes: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
    let (_, &mut m_k, rest) = hashes.select_nth_unstable_by(k - 1, f64::total_cmp);
    // (k+r)-th minimum is the (r-1)-th smallest of the right partition.
    let (_, &mut m_k_r, _) = rest.select_nth_unstable_by(r - 1, f64::total_cmp);
    let est = |theta: f64| (k as f64 - 1.0) / theta;
    let (e0, er) = (est(m_k), est(m_k_r));
    let nf = n as f64;
    // Strong adversary: g(0, r) = argmax_j |est(M₍ₖ₊ⱼ₎) − n|.
    let strong = if (e0 - nf).abs() >= (er - nf).abs() {
        e0
    } else {
        er
    };
    TrialEstimates {
        sequential: e0,
        strong,
        weak: er,
        m_k,
        m_k_r,
    }
}

fn stats(estimates: impl Iterator<Item = f64> + Clone, n: u64) -> EstimatorStats {
    let nf = n as f64;
    let count = estimates.clone().count() as f64;
    let mean = estimates.clone().sum::<f64>() / count;
    let mse = estimates.map(|e| (e - nf) * (e - nf)).sum::<f64>() / count;
    EstimatorStats {
        mean,
        rse: mse.sqrt() / nf,
        relative_bias: (mean - nf) / nf,
    }
}

/// Runs the full Monte-Carlo simulation (Table 1 regeneration).
pub fn simulate(params: AdversaryParams, trials: usize, seed: u64) -> SimulationResult {
    let mut rng = SmallRng::seed_from_u64(seed);
    let samples: Vec<TrialEstimates> = (0..trials).map(|_| run_trial(params, &mut rng)).collect();
    SimulationResult {
        params,
        trials,
        sequential: stats(samples.iter().map(|t| t.sequential), params.n),
        strong: stats(samples.iter().map(|t| t.strong), params.n),
        weak: stats(samples.iter().map(|t| t.weak), params.n),
        samples,
    }
}

/// Classification of the strong adversary's choice for Figure 3: given a
/// realised pair `(m_k, m_k_r)`, returns `true` if the adversary prefers
/// hiding `r` elements (Θ = `M₍ₖ₊ᵣ₎`, the dark-gray region) and `false`
/// for Θ = `M₍ₖ₎` (light gray).
pub fn strong_prefers_hiding(params: AdversaryParams, m_k: f64, m_k_r: f64) -> bool {
    let k = params.k as f64;
    let n = params.n as f64;
    let e0 = (k - 1.0) / m_k;
    let er = (k - 1.0) / m_k_r;
    (er - n).abs() > (e0 - n).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orderstats;

    fn run_table1(trials: usize) -> SimulationResult {
        simulate(AdversaryParams::table1(), trials, 0xFCD5)
    }

    #[test]
    fn sequential_estimator_nearly_unbiased() {
        let res = run_table1(4_000);
        assert!(
            res.sequential.relative_bias.abs() < 0.01,
            "bias {}",
            res.sequential.relative_bias
        );
    }

    #[test]
    fn sequential_rse_matches_closed_form() {
        let res = run_table1(4_000);
        // Table 1: ≤ 1/√(k−2) ≈ 3.13%; simulated value ≈ 3.1%.
        let bound = 1.0 / (1022.0f64).sqrt();
        assert!(
            res.sequential.rse < bound * 1.1,
            "rse {}",
            res.sequential.rse
        );
        assert!(
            res.sequential.rse > bound * 0.8,
            "rse {}",
            res.sequential.rse
        );
    }

    #[test]
    fn weak_adversary_matches_closed_form_expectation() {
        let res = run_table1(4_000);
        let expected = orderstats::expected_estimate(1 << 15, 1 << 10, 8);
        let rel = (res.weak.mean - expected).abs() / expected;
        assert!(
            rel < 0.01,
            "weak mean {} vs closed form {expected}",
            res.weak.mean
        );
    }

    #[test]
    fn weak_adversary_underestimates() {
        // Hiding small elements inflates Θ ⇒ deflates the estimate.
        let res = run_table1(2_000);
        assert!(res.weak.relative_bias < 0.0);
    }

    #[test]
    fn strong_adversary_rse_bracket() {
        // Table 1 reports ≈3.8% for the strong adversary at these
        // parameters — strictly worse than sequential, within 2× bound.
        let res = run_table1(4_000);
        assert!(res.strong.rse >= res.sequential.rse, "strong must be worst");
        assert!(res.strong.rse < 0.05, "rse {}", res.strong.rse);
        assert!(
            res.strong.rse > 0.03,
            "strong rse {} implausibly small",
            res.strong.rse
        );
    }

    #[test]
    fn weak_rse_within_paper_bound() {
        let res = run_table1(4_000);
        let bound = orderstats::weak_adversary_rse_bound(1 << 10, 8);
        assert!(
            res.weak.rse <= bound,
            "rse {} vs bound {bound}",
            res.weak.rse
        );
    }

    #[test]
    fn strong_dominates_weak_and_sequential_per_trial() {
        let res = run_table1(500);
        let n = (1u64 << 15) as f64;
        for t in &res.samples {
            let es = (t.strong - n).abs();
            assert!(es + 1e-9 >= (t.sequential - n).abs());
            assert!(es + 1e-9 >= (t.weak - n).abs());
        }
    }

    #[test]
    fn order_statistics_are_ordered() {
        let res = run_table1(200);
        for t in &res.samples {
            assert!(t.m_k < t.m_k_r, "M(k) must precede M(k+r)");
            assert!(t.sequential > t.weak, "smaller Θ ⇒ larger estimate");
        }
    }

    #[test]
    fn strong_choice_classifier_agrees_with_trials() {
        let params = AdversaryParams::table1();
        let res = simulate(params, 300, 7);
        for t in &res.samples {
            let prefers = strong_prefers_hiding(params, t.m_k, t.m_k_r);
            let expected = if prefers { t.weak } else { t.sequential };
            assert_eq!(t.strong, expected);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate(AdversaryParams::table1(), 100, 1);
        let b = simulate(AdversaryParams::table1(), 100, 1);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    #[should_panic(expected = "n > k + r")]
    fn tiny_stream_rejected() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = run_trial(
            AdversaryParams {
                n: 100,
                k: 100,
                r: 8,
            },
            &mut rng,
        );
    }
}
