//! Run-time r-relaxation checker for the concurrent Θ sketch.
//!
//! Theorem 1 promises: every query of `OptParSketch` returns the result
//! the *sequential* (de-randomised) sketch would return on some
//! sub-stream missing at most `r = 2Nb` of the preceding updates (in some
//! order). This module decides, for an observed query snapshot, whether
//! such a sub-stream exists — turning the paper's correctness theorem
//! into an executable test oracle.
//!
//! ## Admissibility conditions
//!
//! The quick-select Θ sketch maintains the invariant that its retained
//! set is exactly `{h ∈ seen : h < Θ}`, with Θ either 1 (`u64::MAX`, exact
//! mode) or the `(k+1)`-th smallest hash of the seen-set at the last
//! rebuild. Hence, for a query that saw sub-stream `S ⊆ P` (the distinct
//! preceding hashes) with `|P \ S| ≤ r`:
//!
//! * **exact mode** (Θ = 1): `retained = |S| ∈ [|P| − r, |P|]`, and the
//!   estimate equals `retained`;
//! * **estimation mode**: Θ is an element of `S` (so of `P`); writing
//!   `C(Θ) = |{h ∈ P : h < Θ}|`, the retained count satisfies
//!   `retained = |{h ∈ S : h < Θ}| ∈ [C(Θ) − r, C(Θ)]` and `retained ≥ k`;
//!   the estimate equals `retained/Θ`.
//!
//! These conditions are necessary; re-ordering freedom (a Θ sketch's
//! state is order-insensitive as a set, and the relaxation permits
//! reordering) makes them tight in practice, so violations reliably
//! expose lost updates, double merges, or torn snapshots.

use fcds_sketches::theta::{theta_to_fraction, THETA_MAX};
use std::collections::HashSet;

/// A query observation to validate: the published (Θ, retained, estimate)
/// triple of the concurrent Θ sketch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThetaObservation {
    /// Observed threshold (integer hash domain).
    pub theta: u64,
    /// Observed number of retained samples.
    pub retained: u64,
    /// Observed estimate.
    pub estimate: f64,
}

/// Reasons an observation is inadmissible under the r-relaxation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Θ is not a hash of any preceding update (and not 1).
    ThetaNotInStream {
        /// The offending Θ.
        theta: u64,
    },
    /// The retained count cannot be produced by hiding ≤ r updates.
    RetainedOutOfRange {
        /// Observed retained count.
        retained: u64,
        /// Smallest admissible value.
        lo: u64,
        /// Largest admissible value.
        hi: u64,
    },
    /// Estimation mode with fewer than k retained samples.
    BelowK {
        /// Observed retained count.
        retained: u64,
        /// The sketch's k.
        k: usize,
    },
    /// The estimate does not match `retained/Θ` (or `retained` in exact
    /// mode).
    EstimateMismatch {
        /// Observed estimate.
        observed: f64,
        /// Estimate implied by (Θ, retained).
        implied: f64,
    },
    /// No prefix length in the queried window admits the observation.
    NoValidPrefix {
        /// The most specific violation found at the window's upper end.
        last: Box<Violation>,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::ThetaNotInStream { theta } => {
                write!(f, "theta {theta} is not a preceding update's hash")
            }
            Violation::RetainedOutOfRange { retained, lo, hi } => {
                write!(f, "retained {retained} outside admissible [{lo}, {hi}]")
            }
            Violation::BelowK { retained, k } => {
                write!(f, "estimation mode with retained {retained} < k = {k}")
            }
            Violation::EstimateMismatch { observed, implied } => {
                write!(
                    f,
                    "estimate {observed} but (theta, retained) imply {implied}"
                )
            }
            Violation::NoValidPrefix { last } => {
                write!(
                    f,
                    "no prefix in window admits the observation; last: {last}"
                )
            }
        }
    }
}

impl std::error::Error for Violation {}

/// The r-relaxation checker for concurrent Θ sketch executions.
#[derive(Debug, Clone)]
pub struct ThetaChecker {
    k: usize,
    r: u64,
}

impl ThetaChecker {
    /// Creates a checker for a sketch with nominal size `k` and
    /// relaxation bound `r` (use `2Nb` for `OptParSketch`, Theorem 1).
    pub fn new(k: usize, r: u64) -> Self {
        ThetaChecker { k, r }
    }

    /// The relaxation bound.
    pub fn r(&self) -> u64 {
        self.r
    }

    /// Checks an observation against a query that saw exactly the first
    /// `preceding` updates of `stream` (normalised hashes, in ingestion
    /// order, duplicates allowed).
    pub fn check_at(
        &self,
        stream: &[u64],
        preceding: usize,
        obs: &ThetaObservation,
    ) -> Result<(), Violation> {
        let mut distinct: Vec<u64> = Vec::new();
        let mut seen = HashSet::new();
        for &h in &stream[..preceding] {
            if seen.insert(h) {
                distinct.push(h);
            }
        }
        distinct.sort_unstable();
        self.check_sorted(&distinct, obs)
    }

    /// Checks an observation for a query concurrent with ingestion: the
    /// query's linearisation point saw some prefix of length in
    /// `lo..=hi`. Admissible iff any prefix in the window admits it.
    pub fn check_window(
        &self,
        stream: &[u64],
        lo: usize,
        hi: usize,
        obs: &ThetaObservation,
    ) -> Result<(), Violation> {
        assert!(lo <= hi && hi <= stream.len(), "bad window");
        // Build the distinct sorted prefix incrementally from lo to hi.
        let mut seen: HashSet<u64> = HashSet::new();
        let mut sorted: Vec<u64> = Vec::new();
        for &h in &stream[..lo] {
            if seen.insert(h) {
                sorted.push(h);
            }
        }
        sorted.sort_unstable();
        let mut last_violation = None;
        for p in lo..=hi {
            if p > lo {
                let h = stream[p - 1];
                if seen.insert(h) {
                    let idx = sorted.partition_point(|&x| x < h);
                    sorted.insert(idx, h);
                }
            }
            match self.check_sorted(&sorted, obs) {
                Ok(()) => return Ok(()),
                Err(v) => last_violation = Some(v),
            }
        }
        Err(Violation::NoValidPrefix {
            last: Box::new(last_violation.expect("window non-empty")),
        })
    }

    /// Core admissibility test against a sorted, distinct preceding set.
    fn check_sorted(
        &self,
        sorted_distinct: &[u64],
        obs: &ThetaObservation,
    ) -> Result<(), Violation> {
        if obs.theta == THETA_MAX {
            // Exact mode: the query saw |S| ∈ [|P|−r, |P|] distinct items.
            let total = sorted_distinct.len() as u64;
            let lo = total.saturating_sub(self.r);
            if obs.retained < lo || obs.retained > total {
                return Err(Violation::RetainedOutOfRange {
                    retained: obs.retained,
                    lo,
                    hi: total,
                });
            }
            let implied = obs.retained as f64;
            if (obs.estimate - implied).abs() > 1e-6 {
                return Err(Violation::EstimateMismatch {
                    observed: obs.estimate,
                    implied,
                });
            }
            return Ok(());
        }

        // Estimation mode.
        if (obs.retained as usize) < self.k {
            return Err(Violation::BelowK {
                retained: obs.retained,
                k: self.k,
            });
        }
        if sorted_distinct.binary_search(&obs.theta).is_err() {
            return Err(Violation::ThetaNotInStream { theta: obs.theta });
        }
        let c_full = sorted_distinct.partition_point(|&x| x < obs.theta) as u64;
        let lo = c_full.saturating_sub(self.r);
        if obs.retained < lo || obs.retained > c_full {
            return Err(Violation::RetainedOutOfRange {
                retained: obs.retained,
                lo,
                hi: c_full,
            });
        }
        let implied = obs.retained as f64 / theta_to_fraction(obs.theta);
        let rel = (obs.estimate - implied).abs() / implied.max(1.0);
        if rel > 1e-9 {
            return Err(Violation::EstimateMismatch {
                observed: obs.estimate,
                implied,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcds_sketches::hash::Hashable;
    use fcds_sketches::theta::{normalize_hash, QuickSelectThetaSketch, ThetaRead};

    const SEED: u64 = 9001;

    fn hashed_stream(n: u64) -> Vec<u64> {
        (0..n)
            .map(|i| normalize_hash(i.hash_with_seed(SEED)))
            .collect()
    }

    fn observe(sketch: &QuickSelectThetaSketch) -> ThetaObservation {
        ThetaObservation {
            theta: sketch.theta(),
            retained: sketch.retained() as u64,
            estimate: sketch.estimate(),
        }
    }

    #[test]
    fn sequential_run_is_a_0_relaxation() {
        // Feed the sequential sketch and validate its own state at every
        // prefix: a correct sequential sketch is a 0-relaxation of itself.
        let stream = hashed_stream(20_000);
        let mut sketch = QuickSelectThetaSketch::new(6, SEED).unwrap();
        let checker = ThetaChecker::new(64, 0);
        for (i, &h) in stream.iter().enumerate() {
            sketch.update_hash(h);
            if i % 997 == 0 {
                checker
                    .check_at(&stream, i + 1, &observe(&sketch))
                    .unwrap_or_else(|v| panic!("violation at prefix {}: {v}", i + 1));
            }
        }
    }

    #[test]
    fn stale_snapshot_admissible_within_r() {
        // A snapshot taken `d ≤ r` updates ago must be admissible at the
        // current prefix with relaxation r.
        let stream = hashed_stream(50_000);
        let mut sketch = QuickSelectThetaSketch::new(6, SEED).unwrap();
        let r = 32u64;
        let checker = ThetaChecker::new(64, r);
        let mut history: Vec<ThetaObservation> = Vec::new();
        for &h in &stream {
            history.push(observe(&sketch));
            sketch.update_hash(h);
        }
        // Observation before update i reflects prefix i; check it against
        // prefixes up to i + r.
        for i in (0..stream.len()).step_by(1231) {
            for d in [0usize, 1, r as usize / 2, r as usize] {
                let p = (i + d).min(stream.len());
                checker
                    .check_at(&stream, p, &history[i])
                    .unwrap_or_else(|v| panic!("obs@{i} vs prefix {p}: {v}"));
            }
        }
    }

    #[test]
    fn snapshot_staler_than_r_rejected_eventually() {
        // Take a snapshot, then ingest far more than r fresh distinct
        // items; in estimation mode the old (Θ, retained) pair must
        // become inadmissible (retained falls below C(Θ) − r).
        let stream = hashed_stream(100_000);
        let mut sketch = QuickSelectThetaSketch::new(4, SEED).unwrap(); // k = 16
        let r = 8u64;
        let checker = ThetaChecker::new(16, r);
        for &h in &stream[..50_000] {
            sketch.update_hash(h);
        }
        let stale = observe(&sketch);
        assert!(
            checker.check_at(&stream, 50_000, &stale).is_ok(),
            "fresh snapshot must pass"
        );
        // 50k further distinct updates: ~half fall below the old Θ, far
        // more than r of them.
        assert!(
            checker.check_at(&stream, 100_000, &stale).is_err(),
            "snapshot 50k updates stale must violate r = 8"
        );
    }

    #[test]
    fn tampered_theta_rejected() {
        let stream = hashed_stream(30_000);
        let mut sketch = QuickSelectThetaSketch::new(6, SEED).unwrap();
        for &h in &stream {
            sketch.update_hash(h);
        }
        let mut obs = observe(&sketch);
        obs.theta ^= 0xDEADBEEF; // almost surely not a stream hash
        assert!(matches!(
            ThetaChecker::new(64, 16).check_at(&stream, stream.len(), &obs),
            Err(Violation::ThetaNotInStream { .. })
        ));
    }

    #[test]
    fn inflated_retained_rejected() {
        let stream = hashed_stream(30_000);
        let mut sketch = QuickSelectThetaSketch::new(6, SEED).unwrap();
        for &h in &stream {
            sketch.update_hash(h);
        }
        let mut obs = observe(&sketch);
        obs.retained += 50; // more samples below Θ than exist
        obs.estimate = obs.retained as f64 / theta_to_fraction(obs.theta);
        assert!(matches!(
            ThetaChecker::new(64, 16).check_at(&stream, stream.len(), &obs),
            Err(Violation::RetainedOutOfRange { .. })
        ));
    }

    #[test]
    fn wrong_estimate_rejected() {
        let stream = hashed_stream(30_000);
        let mut sketch = QuickSelectThetaSketch::new(6, SEED).unwrap();
        for &h in &stream {
            sketch.update_hash(h);
        }
        let mut obs = observe(&sketch);
        obs.estimate *= 1.5;
        assert!(matches!(
            ThetaChecker::new(64, 16).check_at(&stream, stream.len(), &obs),
            Err(Violation::EstimateMismatch { .. })
        ));
    }

    #[test]
    fn below_k_rejected() {
        let stream = hashed_stream(1000);
        let obs = ThetaObservation {
            theta: stream[0],
            retained: 3,
            estimate: 3.0 / theta_to_fraction(stream[0]),
        };
        assert!(matches!(
            ThetaChecker::new(64, 16).check_at(&stream, 1000, &obs),
            Err(Violation::BelowK { .. })
        ));
    }

    #[test]
    fn exact_mode_with_missing_updates_within_r() {
        let stream = hashed_stream(100);
        let checker = ThetaChecker::new(1024, 8);
        // Query missed 5 of 100 distinct updates.
        let obs = ThetaObservation {
            theta: THETA_MAX,
            retained: 95,
            estimate: 95.0,
        };
        assert!(checker.check_at(&stream, 100, &obs).is_ok());
        // Missing 9 > r = 8 is not admissible.
        let obs = ThetaObservation {
            theta: THETA_MAX,
            retained: 91,
            estimate: 91.0,
        };
        assert!(checker.check_at(&stream, 100, &obs).is_err());
    }

    #[test]
    fn window_check_accepts_any_admissible_prefix() {
        let stream = hashed_stream(5_000);
        let mut sketch = QuickSelectThetaSketch::new(4, SEED).unwrap();
        for &h in &stream[..3_000] {
            sketch.update_hash(h);
        }
        let obs = observe(&sketch);
        let checker = ThetaChecker::new(16, 0);
        // The observation corresponds to prefix 3000 exactly; a window
        // containing 3000 must accept even with r = 0.
        checker.check_window(&stream, 2_990, 3_010, &obs).unwrap();
        // A window strictly after it must reject with r = 0 (new distinct
        // items below Θ arrived).
        assert!(checker.check_window(&stream, 3_200, 3_300, &obs).is_err());
    }

    #[test]
    fn duplicates_do_not_inflate_the_preceding_set() {
        // Stream with every item repeated: the distinct prefix is half.
        let base = hashed_stream(200);
        let mut stream = Vec::new();
        for &h in &base {
            stream.push(h);
            stream.push(h);
        }
        let checker = ThetaChecker::new(1024, 0);
        let obs = ThetaObservation {
            theta: THETA_MAX,
            retained: 200,
            estimate: 200.0,
        };
        checker.check_at(&stream, 400, &obs).unwrap();
    }

    #[test]
    fn violation_display_messages() {
        let v = Violation::ThetaNotInStream { theta: 5 };
        assert!(v.to_string().contains("theta 5"));
        let v = Violation::RetainedOutOfRange {
            retained: 10,
            lo: 12,
            hi: 20,
        };
        assert!(v.to_string().contains("[12, 20]"));
        let v = Violation::NoValidPrefix {
            last: Box::new(Violation::BelowK { retained: 1, k: 16 }),
        };
        assert!(v.to_string().contains("no prefix"));
    }
}
