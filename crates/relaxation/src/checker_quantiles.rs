//! Run-time r-relaxation checker for the concurrent Quantiles sketch
//! (§6.2).
//!
//! The paper's result: an r-relaxed PAC quantiles sketch answers a query
//! for quantile φ with an element whose rank in the *full* stream lies in
//! `(φ ± ε_r)·n`, where `ε_r = ε − rε/n + r/n`. The derivation (Equations
//! 1–2) brackets the returned element's rank when the adversary hides
//! `i` elements below and `j` above the quantile with `i + j ≤ r`:
//!
//! `rank ∈ [(φ−ε)(n−(i+j)) + i, (φ+ε)(n−(i+j)) + i]`.
//!
//! The checker inverts that: an observed answer is admissible iff *some*
//! `(i, j)` with `i + j ≤ r` puts its true rank inside the bracket.
//! Minimising/maximising over `i, j` gives the envelope
//! `[(φ−ε)(n−r), (φ+ε)(n−r) + r]`, which is what we test (together with
//! the membership requirement that the answer is an actual stream
//! element).

use fcds_sketches::quantiles::relaxed_epsilon;

/// A quantile-query observation to validate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileObservation<T> {
    /// The queried quantile φ ∈ [0, 1].
    pub phi: f64,
    /// The returned element.
    pub answer: T,
}

/// Why a quantiles observation was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantilesViolation {
    /// The answer is not an element of the preceding stream.
    NotInStream,
    /// The answer's rank lies outside the relaxed PAC envelope.
    RankOutOfRange {
        /// True normalised rank of the answer in the preceding stream.
        rank: f64,
        /// Lower envelope bound (normalised).
        lo: f64,
        /// Upper envelope bound (normalised).
        hi: f64,
    },
}

impl std::fmt::Display for QuantilesViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantilesViolation::NotInStream => write!(f, "answer not in preceding stream"),
            QuantilesViolation::RankOutOfRange { rank, lo, hi } => {
                write!(f, "answer rank {rank:.4} outside [{lo:.4}, {hi:.4}]")
            }
        }
    }
}

impl std::error::Error for QuantilesViolation {}

/// The r-relaxation checker for quantile queries.
#[derive(Debug, Clone, Copy)]
pub struct QuantilesChecker {
    /// The sketch's PAC rank-error parameter ε.
    pub epsilon: f64,
    /// The relaxation bound `r = 2Nb`.
    pub r: u64,
}

impl QuantilesChecker {
    /// Creates a checker from the sketch's ε and the engine's `r`.
    pub fn new(epsilon: f64, r: u64) -> Self {
        QuantilesChecker { epsilon, r }
    }

    /// The effective relaxed error bound ε_r at stream length `n` (§6.2).
    pub fn epsilon_r(&self, n: u64) -> f64 {
        relaxed_epsilon(self.epsilon, self.r, n)
    }

    /// Checks an observation against the first `preceding` elements of
    /// `stream`.
    ///
    /// The envelope derives from Equation (1) of §6.2 with the hidden
    /// split `(i, j)` free: rank must lie in
    /// `[(φ−ε)(n−r), (φ+ε)(n−r)+r]` (normalised by n, and clipped to
    /// `[0, 1]`).
    pub fn check_at<T: Ord>(
        &self,
        stream: &[T],
        preceding: usize,
        obs: &QuantileObservation<T>,
    ) -> Result<(), QuantilesViolation> {
        let window = &stream[..preceding];
        if !window.contains(&obs.answer) {
            return Err(QuantilesViolation::NotInStream);
        }
        let n = preceding as f64;
        let below = window.iter().filter(|v| **v < obs.answer).count() as f64;
        let equal = window.iter().filter(|v| **v == obs.answer).count() as f64;
        // The answer occupies the rank interval [below, below+equal); use
        // the closest point to the envelope (duplicates make any of these
        // ranks legitimate for the returned element).
        let r = self.r as f64;
        let eps = self.epsilon;
        let lo = ((obs.phi - eps) * (n - r)).max(0.0);
        let hi = ((obs.phi + eps) * (n - r) + r).min(n);
        let rank_lo = below;
        let rank_hi = below + equal;
        // Admissible iff the rank interval intersects the envelope.
        if rank_hi < lo || rank_lo > hi {
            return Err(QuantilesViolation::RankOutOfRange {
                rank: below / n,
                lo: lo / n,
                hi: hi / n,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcds_sketches::oracle::DeterministicOracle;
    use fcds_sketches::quantiles::{epsilon_for_k, QuantilesSketch};

    fn sequential_answers(
        n: u64,
        k: usize,
        phis: &[f64],
    ) -> (Vec<u64>, Vec<QuantileObservation<u64>>) {
        let stream: Vec<u64> = (0..n).map(|i| (i * 2_654_435_761) % n).collect();
        let mut q = QuantilesSketch::new(k, DeterministicOracle::new(1)).unwrap();
        for &v in &stream {
            q.update(v);
        }
        let obs = phis
            .iter()
            .map(|&phi| QuantileObservation {
                phi,
                answer: q.quantile(phi).unwrap(),
            })
            .collect();
        (stream, obs)
    }

    #[test]
    fn sequential_sketch_passes_with_r_zero() {
        let k = 128;
        let (stream, obs) = sequential_answers(50_000, k, &[0.1, 0.25, 0.5, 0.75, 0.9]);
        // Slack on ε: the empirical fit is not a hard bound.
        let checker = QuantilesChecker::new(3.0 * epsilon_for_k(k), 0);
        for o in &obs {
            checker
                .check_at(&stream, stream.len(), o)
                .unwrap_or_else(|v| panic!("phi={}: {v}", o.phi));
        }
    }

    #[test]
    fn stale_answers_pass_within_r() {
        // Answer computed at prefix p, checked at prefix p + d with
        // d ≤ r: admissible.
        let k = 128;
        let n = 40_000u64;
        let stream: Vec<u64> = (0..n).collect();
        let mut q = QuantilesSketch::<u64>::with_seed(k, 3).unwrap();
        let p = 30_000usize;
        for &v in &stream[..p] {
            q.update(v);
        }
        let r = 256u64;
        let checker = QuantilesChecker::new(3.0 * epsilon_for_k(k), r);
        let obs = QuantileObservation {
            phi: 0.5,
            answer: q.quantile(0.5).unwrap(),
        };
        for d in [0u64, r / 2, r] {
            checker
                .check_at(&stream, p + d as usize, &obs)
                .unwrap_or_else(|v| panic!("d={d}: {v}"));
        }
    }

    #[test]
    fn far_off_answer_rejected() {
        let stream: Vec<u64> = (0..10_000).collect();
        let checker = QuantilesChecker::new(0.02, 16);
        // Claim the median is the 99th percentile element.
        let obs = QuantileObservation {
            phi: 0.5,
            answer: 9_900u64,
        };
        assert!(matches!(
            checker.check_at(&stream, stream.len(), &obs),
            Err(QuantilesViolation::RankOutOfRange { .. })
        ));
    }

    #[test]
    fn foreign_answer_rejected() {
        let stream: Vec<u64> = (0..1_000).collect();
        let checker = QuantilesChecker::new(0.1, 16);
        let obs = QuantileObservation {
            phi: 0.5,
            answer: 5_000u64,
        };
        assert_eq!(
            checker.check_at(&stream, stream.len(), &obs),
            Err(QuantilesViolation::NotInStream)
        );
    }

    #[test]
    fn duplicates_widen_the_admissible_interval() {
        // Half the stream is the same value: it is an admissible answer
        // for a wide range of φ.
        let mut stream: Vec<u64> = vec![500; 5_000];
        stream.extend(0..5_000u64);
        let checker = QuantilesChecker::new(0.02, 8);
        // Value 500 occupies ranks [0.05, 0.55]: admissible across that
        // whole range…
        for phi in [0.1, 0.2, 0.4, 0.5] {
            let obs = QuantileObservation { phi, answer: 500 };
            checker
                .check_at(&stream, stream.len(), &obs)
                .unwrap_or_else(|v| panic!("phi={phi}: {v}"));
        }
        // …but not beyond it.
        let obs = QuantileObservation {
            phi: 0.62,
            answer: 500,
        };
        assert!(checker.check_at(&stream, stream.len(), &obs).is_err());
    }

    #[test]
    fn envelope_tightens_as_stream_grows() {
        let checker = QuantilesChecker::new(0.01, 100);
        assert!(checker.epsilon_r(1_000) > checker.epsilon_r(100_000));
        assert!((checker.epsilon_r(u64::MAX / 2) - 0.01).abs() < 1e-6);
    }
}
