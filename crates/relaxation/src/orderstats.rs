//! Order-statistics mathematics behind §6.1.
//!
//! The hashed distinct elements of the stream are modelled as `n` iid
//! uniform variables on `[0, 1]`; `M₍ᵢ₎`, the i-th minimum, follows a
//! Beta(i, n−i+1) distribution. The Θ estimator evaluated at `M₍ᵢ₎` is
//! `est(M₍ᵢ₎) = (k−1)/M₍ᵢ₎`, whose moments are exactly computable:
//!
//! * `E[1/M₍ᵢ₎] = n/(i−1)`
//! * `E[1/M₍ᵢ₎²] = n(n−1)/((i−1)(i−2))`
//!
//! which yield the closed forms in Table 1: the weak adversary (which
//! always hides `j = r` elements, the error-maximising deterministic
//! choice) produces expectation `n(k−1)/(k+r−1)`.

/// Expected value of the i-th minimum of `n` iid uniforms:
/// `E[M₍ᵢ₎] = i/(n+1)`.
pub fn expected_min(n: u64, i: u64) -> f64 {
    assert!(i >= 1 && i <= n, "order statistic index out of range");
    i as f64 / (n as f64 + 1.0)
}

/// `E[(k−1)/M₍ₖ₊ⱼ₎]` — the expected Θ estimate when the query sees the
/// (k+j)-th minimum as Θ: `n(k−1)/(k+j−1)`.
///
/// With `j = 0` this recovers the unbiasedness of the sequential sketch
/// (`E[e] = n`); with `j = r` it is the weak adversary's expectation from
/// Table 1.
pub fn expected_estimate(n: u64, k: u64, j: u64) -> f64 {
    assert!(k + j >= 2, "estimator needs k+j ≥ 2");
    n as f64 * (k as f64 - 1.0) / (k as f64 + j as f64 - 1.0)
}

/// Exact second moment `E[est(M₍ₖ₊ⱼ₎)²] = (k−1)²·n(n−1)/((k+j−1)(k+j−2))`.
pub fn second_moment_estimate(n: u64, k: u64, j: u64) -> f64 {
    assert!(k + j >= 3, "second moment needs k+j ≥ 3");
    let (n, k, j) = (n as f64, k as f64, j as f64);
    (k - 1.0) * (k - 1.0) * n * (n - 1.0) / ((k + j - 1.0) * (k + j - 2.0))
}

/// Exact RSE (root-mean-square error relative to `n`) of the estimator
/// that always evaluates at `M₍ₖ₊ⱼ₎`:
/// `√(E[(e−n)²])/n = √(E[e²] − 2n·E[e] + n²)/n`.
///
/// With `j = 0` this is the sequential sketch's exact RSE (≈ `1/√(k−2)`);
/// with `j = r` it is the weak adversary's, which §6.1 bounds by
/// `√(1/(k−2)) + r/(k−2)`.
pub fn rse_estimate(n: u64, k: u64, j: u64) -> f64 {
    let e1 = expected_estimate(n, k, j);
    let e2 = second_moment_estimate(n, k, j);
    let n = n as f64;
    let mse = (e2 - 2.0 * n * e1 + n * n).max(0.0);
    mse.sqrt() / n
}

/// The paper's closed-form *bound* on the weak-adversary RSE:
/// `√(1/(k−2)) + r/(k−2)` (§6.1). Re-exported from `fcds-sketches` for
/// convenience.
pub fn weak_adversary_rse_bound(k: usize, r: usize) -> f64 {
    fcds_sketches::theta::relaxed_rse(k, r)
}

/// The relative bias the weak adversary induces:
/// `(n − E[e_Aw])/n = r/(k+r−1)`.
pub fn weak_adversary_relative_bias(k: u64, r: u64) -> f64 {
    r as f64 / (k as f64 + r as f64 - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_min_is_increasing() {
        let n = 100;
        let mut last = 0.0;
        for i in 1..=n {
            let v = expected_min(n, i);
            assert!(v > last);
            last = v;
        }
        assert!((expected_min(n, n) - 100.0 / 101.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_estimator_is_unbiased() {
        // j = 0: E[e] = n.
        for &(n, k) in &[(1 << 15, 1 << 10), (1_000_000, 4096)] {
            assert!((expected_estimate(n, k, 0) - n as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn weak_adversary_expectation_matches_table1() {
        // Table 1: E[e_Aw] = n(k−1)/(k+r−1) with n = 2^15, k = 2^10, r = 8.
        let e = expected_estimate(1 << 15, 1 << 10, 8);
        let expected = 32768.0 * 1023.0 / 1031.0;
        assert!((e - expected).abs() < 1e-9);
        // ≈ 0.992 · n: a slight underestimate.
        assert!(e < 32768.0);
        assert!(e > 0.99 * 32768.0);
    }

    #[test]
    fn sequential_rse_matches_1_over_sqrt_k_minus_2() {
        // For large n the exact RSE at j=0 approaches √((n−k+1)/(n(k−2)))
        // ≈ 1/√(k−2).
        let k = 1 << 10;
        let rse = rse_estimate(1 << 20, k, 0);
        let bound = 1.0 / ((k as f64) - 2.0).sqrt();
        assert!(rse <= bound * 1.001, "rse {rse} vs bound {bound}");
        assert!(rse >= bound * 0.9, "rse {rse} much below bound {bound}");
    }

    #[test]
    fn weak_rse_within_paper_bound() {
        // §6.1: RSE(e_Aw) ≤ √(1/(k−2)) + r/(k−2); numerically ~3.8%
        // for Table 1's parameters.
        let (n, k, r) = (1u64 << 15, 1u64 << 10, 8u64);
        let rse = rse_estimate(n, k, r);
        let bound = weak_adversary_rse_bound(k as usize, r as usize);
        assert!(rse <= bound, "rse {rse} vs bound {bound}");
        assert!(
            rse > 0.03 && rse < 0.045,
            "rse {rse} not near Table 1's 3.8%"
        );
    }

    #[test]
    fn rse_grows_with_j() {
        let (n, k) = (1u64 << 15, 1u64 << 10);
        let r0 = rse_estimate(n, k, 0);
        let r8 = rse_estimate(n, k, 8);
        let r64 = rse_estimate(n, k, 64);
        assert!(r0 < r8 && r8 < r64);
    }

    #[test]
    fn weak_bias_formula() {
        let bias = weak_adversary_relative_bias(1 << 10, 8);
        assert!((bias - 8.0 / 1031.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "order statistic index")]
    fn expected_min_rejects_zero() {
        let _ = expected_min(10, 0);
    }
}
