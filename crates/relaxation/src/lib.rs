//! # fcds-relaxation — relaxed consistency for concurrent data sketches
//!
//! The formal side of [*Fast Concurrent Data
//! Sketches*](https://arxiv.org/abs/1902.10995): the paper specifies its
//! concurrent sketches as **strongly linearisable with respect to an
//! r-relaxation** of the de-randomised sequential sketch (Definition 2,
//! Theorem 1) and then bounds the *error* the relaxation adds under weak
//! and strong adversaries (§6). This crate makes all three pieces
//! executable:
//!
//! * [`history`] — operation histories and a decision procedure for
//!   Definition 2 ("H is an r-relaxation of H′"), reproducing Figure 2.
//! * [`checker`] — a run-time checker for the concurrent Θ sketch: given
//!   the ingested stream and a query observation, decide whether the
//!   observation is admissible under the `r = 2Nb` relaxation. Used by
//!   integration tests to validate Lemma 1/Theorem 1 empirically on real
//!   multi-threaded executions.
//! * [`checker_quantiles`] — the analogous checker for quantile queries,
//!   testing answers against the §6.2 envelope `(φ ± ε_r)·n`.
//! * [`adversary`] — Monte-Carlo simulation of the §6.1 adversaries
//!   (`A_s` knows the coin flips, `A_w` does not) over iid uniform
//!   hashes, regenerating Table 1 and Figures 3–4.
//! * [`orderstats`] — the closed-form order-statistics moments behind the
//!   analysis (`E[M₍ᵢ₎]`, `E[(k−1)/M₍ᵢ₎]`, RSE of the relaxed
//!   estimator).
//! * [`sharded`] — the relaxation under the K-way sharded engine: why
//!   `r = 2Nb` is shard-count independent, and the reference
//!   implementation of the query-time Θ shard merge the checker
//!   validates.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_code)]

pub mod adversary;
pub mod checker;
pub mod checker_quantiles;
pub mod history;
pub mod orderstats;
pub mod sharded;
