//! Batch/scalar ingestion equivalence: feeding the same stream through
//! `update` and `update_batch` must land every sketch in *identical*
//! sequential state — across random batch sizes including 0, 1, and
//! sizes beyond `b` (forcing hand-offs mid-batch), for all four
//! concurrent sketch front-ends, with and without the eager phase.
//!
//! Θ is the interesting case: the batched path hoists the hint per
//! chunk, so it may buffer hashes a fresher hint would have dropped —
//! but Θ monotonicity means the global sketch rejects exactly those
//! hashes at merge time, leaving the retained set and Θ trajectory
//! byte-identical. These tests pin that argument down end-to-end.

use fcds::core::hll::ConcurrentHllBuilder;
use fcds::core::quantiles::ConcurrentQuantilesBuilder;
use fcds::core::theta::ConcurrentThetaBuilder;
use fcds::core::{frequency::ConcurrentFrequencyBuilder, PropagationBackendKind};
use fcds::sketches::theta::ThetaRead;
use proptest::prelude::*;

const SEED: u64 = 9001;

/// Deterministic batch-size schedule covering the required shapes:
/// empty batches, singletons, sub-`b`, exactly `b`, and far beyond `b`
/// (the default lazy `b` is 16).
fn batch_sizes(salt: u64) -> Vec<usize> {
    let base = [0usize, 1, 3, 7, 16, 17, 40, 129, 5, 0, 64, 2];
    let rot = (salt as usize) % base.len();
    let mut sizes: Vec<usize> = base[rot..].to_vec();
    sizes.extend_from_slice(&base[..rot]);
    sizes
}

/// Splits `items` per the schedule, looping it until the stream is
/// consumed, and feeds each slice to `feed`.
fn feed_in_batches<T>(items: &[T], salt: u64, mut feed: impl FnMut(&[T])) {
    let sizes = batch_sizes(salt);
    let mut pos = 0usize;
    let mut idx = 0usize;
    while pos < items.len() {
        let take = sizes[idx % sizes.len()].min(items.len() - pos);
        idx += 1;
        feed(&items[pos..pos + take]);
        pos += take;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Θ: identical (Θ, retained set, estimate) after quiesce, with and
    /// without the eager phase in the middle of the stream.
    #[test]
    fn theta_batched_equals_scalar(
        n in 3_000u64..30_000,
        salt in 0u64..12,
        eager in any::<bool>(),
        lg_k in 5u8..=10,
    ) {
        let e = if eager { 0.04 } else { 1.0 };
        let build = || ConcurrentThetaBuilder::new()
            .lg_k(lg_k)
            .seed(SEED)
            .writers(1)
            .max_concurrency_error(e)
            .backend(PropagationBackendKind::WriterAssisted)
            .build()
            .unwrap();
        let items: Vec<u64> = (0..n).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();

        let scalar = build();
        {
            let mut w = scalar.writer();
            for &v in &items {
                w.update(v);
            }
        }
        scalar.quiesce();

        let batched = build();
        {
            let mut w = batched.writer();
            feed_in_batches(&items, salt, |chunk| w.update_batch(chunk));
        }
        batched.quiesce();

        let (cs, cb) = (scalar.compact(), batched.compact());
        prop_assert_eq!(cs.theta(), cb.theta(), "Θ diverged");
        prop_assert_eq!(cs.retained(), cb.retained());
        let mut hs: Vec<u64> = cs.hashes().collect();
        let mut hb: Vec<u64> = cb.hashes().collect();
        hs.sort_unstable();
        hb.sort_unstable();
        prop_assert_eq!(hs, hb, "retained sets diverged");
        prop_assert_eq!(scalar.snapshot(), batched.snapshot());
    }

    /// HLL: register-identical after quiesce (register max is a set
    /// union, so the min-register hint's staleness cannot show).
    #[test]
    fn hll_batched_equals_scalar(
        n in 3_000u64..30_000,
        salt in 0u64..12,
        eager in any::<bool>(),
    ) {
        let e = if eager { 0.04 } else { 1.0 };
        let build = || ConcurrentHllBuilder::new()
            .lg_m(8)
            .seed(SEED)
            .writers(1)
            .max_concurrency_error(e)
            .backend(PropagationBackendKind::WriterAssisted)
            .build()
            .unwrap();
        let items: Vec<u64> = (0..n).collect();

        let scalar = build();
        {
            let mut w = scalar.writer();
            for &v in &items {
                w.update(v);
            }
        }
        scalar.quiesce();

        let batched = build();
        {
            let mut w = batched.writer();
            feed_in_batches(&items, salt, |chunk| w.update_batch(chunk));
        }
        batched.quiesce();

        prop_assert_eq!(scalar.registers(), batched.registers());
        prop_assert_eq!(scalar.estimate(), batched.estimate());
    }

    /// Quantiles: same oracle seed + same item order ⇒ identical
    /// compaction decisions ⇒ every rank/quantile answer agrees exactly.
    #[test]
    fn quantiles_batched_equals_scalar(
        n in 2_000u64..20_000,
        salt in 0u64..12,
        eager in any::<bool>(),
    ) {
        let e = if eager { 0.04 } else { 1.0 };
        let build = || ConcurrentQuantilesBuilder::new()
            .k(64)
            .oracle_seed(SEED)
            .writers(1)
            .max_concurrency_error(e)
            .backend(PropagationBackendKind::WriterAssisted)
            .build::<u64>()
            .unwrap();
        let items: Vec<u64> = (0..n).map(|i| (i * 2_654_435_761) % n).collect();

        let scalar = build();
        {
            let mut w = scalar.writer();
            for &v in &items {
                w.update(v);
            }
        }
        scalar.quiesce();

        let batched = build();
        {
            let mut w = batched.writer();
            feed_in_batches(&items, salt, |chunk| w.update_batch(chunk));
        }
        batched.quiesce();

        let (rs, rb) = (scalar.snapshot(), batched.snapshot());
        prop_assert_eq!(rs.n(), rb.n());
        for phi in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            prop_assert_eq!(rs.quantile(phi), rb.quantile(phi), "phi = {}", phi);
        }
        for probe in (0..n).step_by((n as usize / 64).max(1)) {
            prop_assert_eq!(rs.rank(&probe), rb.rank(&probe), "rank({})", probe);
        }
    }

    /// Misra–Gries: identical counter tables, error slack, and stream
    /// length. Kept in exact mode (keyspace < k): once reductions kick
    /// in, the outcome depends on the pre-aggregating local map's drain
    /// order, which the std HashMap randomises per instance — so *no*
    /// two runs are byte-comparable there, scalar or batched. Exact
    /// mode is where the equality is well-defined, and it still crosses
    /// every batch boundary shape.
    #[test]
    fn frequency_batched_equals_scalar(
        n in 2_000u64..20_000,
        keyspace in 2u64..16,
        salt in 0u64..12,
        eager in any::<bool>(),
    ) {
        let e = if eager { 0.04 } else { 1.0 };
        let build = || ConcurrentFrequencyBuilder::new()
            .k(16)
            .writers(1)
            .max_concurrency_error(e)
            .backend(PropagationBackendKind::WriterAssisted)
            .build::<u64>()
            .unwrap();
        let items: Vec<u64> = (0..n).map(|i| i % keyspace).collect();

        let scalar = build();
        {
            let mut w = scalar.writer();
            for &v in &items {
                w.update(v);
            }
        }
        scalar.quiesce();

        let batched = build();
        {
            let mut w = batched.writer();
            feed_in_batches(&items, salt, |chunk| w.update_batch(chunk));
        }
        batched.quiesce();

        let (ss, sb) = (scalar.snapshot(), batched.snapshot());
        prop_assert_eq!(ss.n, sb.n);
        prop_assert_eq!(ss.max_error, sb.max_error);
        let mut hs = ss.heavy_hitters(0);
        let mut hb = sb.heavy_hitters(0);
        hs.sort_by_key(|(k, _)| *k);
        hb.sort_by_key(|(k, _)| *k);
        prop_assert_eq!(hs, hb);
    }
}
