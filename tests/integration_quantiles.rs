//! Integration: the concurrent Quantiles sketch against the §6.2 relaxed
//! PAC bound `ε_r = ε − rε/n + r/n`, across threads and stream shapes.

use fcds::core::quantiles::ConcurrentQuantilesBuilder;
use fcds::sketches::quantiles::{epsilon_for_k, relaxed_epsilon, QuantilesSketch, TotalF64};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

#[test]
fn concurrent_ranks_within_relaxed_epsilon() {
    let k = 128;
    let writers = 4;
    let n = 200_000u64;
    let sketch = ConcurrentQuantilesBuilder::new()
        .k(k)
        .writers(writers)
        .build::<u64>()
        .unwrap();
    std::thread::scope(|s| {
        for t in 0..writers as u64 {
            let mut w = sketch.writer();
            s.spawn(move || {
                for i in (t..n).step_by(writers) {
                    w.update(i);
                }
                w.flush().unwrap();
            });
        }
    });
    sketch.quiesce();
    assert_eq!(sketch.visible_n(), n);

    let eps_r = relaxed_epsilon(epsilon_for_k(k), sketch.relaxation(), n);
    // 4σ-ish slack on the probabilistic bound to keep the test stable.
    let tolerance = 4.0 * eps_r;
    for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let v = sketch.quantile(phi).unwrap();
        let true_rank = v as f64 / n as f64;
        assert!(
            (true_rank - phi).abs() <= tolerance,
            "phi={phi}: rank {true_rank}, eps_r={eps_r}"
        );
    }
}

#[test]
fn concurrent_agrees_with_sequential_on_shuffled_stream() {
    let k = 128;
    let n = 100_000u64;
    let mut items: Vec<u64> = (0..n).collect();
    items.shuffle(&mut SmallRng::seed_from_u64(11));

    let mut sequential = QuantilesSketch::<u64>::with_seed(k, 1).unwrap();
    for &v in &items {
        sequential.update(v);
    }

    let sketch = ConcurrentQuantilesBuilder::new()
        .k(k)
        .writers(2)
        .oracle_seed(2)
        .build::<u64>()
        .unwrap();
    std::thread::scope(|s| {
        for half in items.chunks(items.len() / 2) {
            let mut w = sketch.writer();
            s.spawn(move || {
                for &v in half {
                    w.update(v);
                }
                w.flush().unwrap();
            });
        }
    });
    sketch.quiesce();

    for phi in [0.1, 0.5, 0.9] {
        let a = sequential.quantile(phi).unwrap() as f64 / n as f64;
        let b = sketch.quantile(phi).unwrap() as f64 / n as f64;
        assert!(
            (a - b).abs() < 6.0 * epsilon_for_k(k),
            "phi={phi}: sequential {a} vs concurrent {b}"
        );
    }
}

#[test]
fn skewed_distribution_percentiles() {
    // 99% small latencies, 1% outliers: p50 must be small, p999 large.
    let sketch = ConcurrentQuantilesBuilder::new()
        .k(128)
        .writers(2)
        .build::<TotalF64>()
        .unwrap();
    let n = 100_000u64;
    std::thread::scope(|s| {
        for t in 0..2u64 {
            let mut w = sketch.writer();
            s.spawn(move || {
                for i in (t..n).step_by(2) {
                    let v = if i % 100 == 0 {
                        1000.0
                    } else {
                        1.0 + (i % 10) as f64 * 0.1
                    };
                    w.update(TotalF64(v));
                }
                w.flush().unwrap();
            });
        }
    });
    sketch.quiesce();
    let p50 = sketch.quantile(0.5).unwrap().0;
    let p999 = sketch.quantile(0.999).unwrap().0;
    assert!(p50 < 3.0, "p50 = {p50}");
    assert!(p999 >= 1000.0, "p999 = {p999}");
}

#[test]
fn snapshot_consistency_under_load() {
    // A snapshot must be internally consistent: n equals the total weight
    // its own quantiles are computed from, and min/max bracket everything.
    let sketch = ConcurrentQuantilesBuilder::new()
        .k(64)
        .writers(3)
        .max_concurrency_error(1.0)
        .build::<u64>()
        .unwrap();
    std::thread::scope(|s| {
        for t in 0..3u64 {
            let mut w = sketch.writer();
            s.spawn(move || {
                for i in 0..150_000u64 {
                    w.update(t * 1_000_000 + i);
                }
            });
        }
        for _ in 0..300 {
            let snap = sketch.snapshot();
            if snap.is_empty() {
                continue;
            }
            let lo = snap.quantile(0.0).unwrap();
            let hi = snap.quantile(1.0).unwrap();
            let mid = snap.quantile(0.5).unwrap();
            assert!(lo <= mid && mid <= hi);
            assert!(snap.rank(&lo) <= snap.rank(&hi));
        }
    });
}

#[test]
fn visible_n_catches_up_after_flush() {
    let sketch = ConcurrentQuantilesBuilder::new()
        .k(32)
        .writers(2)
        .max_concurrency_error(1.0)
        .build::<u64>()
        .unwrap();
    let mut w1 = sketch.writer();
    let mut w2 = sketch.writer();
    for i in 0..5_000u64 {
        w1.update(i);
        w2.update(i + 5_000);
    }
    w1.flush().unwrap();
    w2.flush().unwrap();
    sketch.quiesce();
    assert_eq!(sketch.visible_n(), 10_000);
}

#[test]
fn concurrent_answers_admissible_under_relaxation_checker() {
    // Cross-crate validation of §6.2: every quantile answer of the
    // concurrent sketch, taken at a quiescent point, must be admissible
    // under the r-relaxed PAC envelope.
    use fcds::relaxation::checker_quantiles::{QuantileObservation, QuantilesChecker};

    let k = 128;
    let sketch = ConcurrentQuantilesBuilder::new()
        .k(k)
        .writers(3)
        .max_concurrency_error(1.0)
        .build::<u64>()
        .unwrap();
    // Permuted stream so levels are exercised non-trivially.
    let n = 60_000u64;
    let stream: Vec<u64> = (0..n).map(|i| (i * 2_654_435_761) % n).collect();

    let mut writers: Vec<_> = (0..3).map(|_| sketch.writer()).collect();
    let checker = QuantilesChecker::new(3.0 * epsilon_for_k(k), sketch.relaxation());
    let mut fed = 0usize;
    for chunk in stream.chunks(20_000) {
        for (i, &v) in chunk.iter().enumerate() {
            writers[i % 3].update(v);
        }
        fed += chunk.len();
        for w in &mut writers {
            w.flush().unwrap();
        }
        sketch.quiesce();
        for phi in [0.1, 0.5, 0.9] {
            let answer = sketch.quantile(phi).unwrap();
            let obs = QuantileObservation { phi, answer };
            checker
                .check_at(&stream, fed, &obs)
                .unwrap_or_else(|v| panic!("phi={phi} after {fed}: {v}"));
        }
    }
}
