//! End-to-end integration: the concurrent Θ sketch validated across
//! crates — accuracy vs the sequential substrate, relaxed consistency via
//! the checker (Theorem 1, empirically), and mergeability of the outputs.

use fcds::core::theta::{ConcurrentThetaBuilder, ConcurrentThetaSketch};
use fcds::relaxation::checker::{ThetaChecker, ThetaObservation};
use fcds::sketches::hash::Hashable;
use fcds::sketches::theta::{normalize_hash, rse, QuickSelectThetaSketch, ThetaRead, ThetaUnion};

const SEED: u64 = 9001;

fn obs(sketch: &ConcurrentThetaSketch) -> ThetaObservation {
    let s = sketch.snapshot();
    ThetaObservation {
        theta: s.theta,
        retained: s.retained,
        estimate: s.estimate,
    }
}

#[test]
fn concurrent_matches_sequential_reference_after_quiesce() {
    // Same seed ⇒ same hash function: after quiescing, the concurrent
    // sketch's retained set must describe the same stream as a sequential
    // sketch within estimator noise.
    let n = 400_000u64;
    let mut reference = QuickSelectThetaSketch::new(12, SEED).unwrap();
    for i in 0..n {
        reference.update(i);
    }

    let sketch = ConcurrentThetaBuilder::new()
        .lg_k(12)
        .seed(SEED)
        .writers(4)
        .max_concurrency_error(0.04)
        .build()
        .unwrap();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let mut w = sketch.writer();
            s.spawn(move || {
                for i in (t..n).step_by(4) {
                    w.update(i);
                }
                w.flush().unwrap();
            });
        }
    });
    sketch.quiesce();

    let (ce, se) = (sketch.estimate(), reference.estimate());
    let rel = (ce - se).abs() / se;
    assert!(rel < 0.05, "concurrent {ce} vs sequential {se}");
    let err = (ce - n as f64).abs() / n as f64;
    assert!(err < 5.0 * rse(4096), "error vs truth {err}");
}

#[test]
fn theorem1_holds_at_quiescent_points() {
    // Repeatedly: ingest a chunk from 3 writers, flush, quiesce, check
    // the snapshot is admissible for the exact prefix with r = 2Nb.
    let writers = 3usize;
    let sketch = ConcurrentThetaBuilder::new()
        .lg_k(8)
        .seed(SEED)
        .writers(writers)
        .max_concurrency_error(1.0)
        .build()
        .unwrap();
    let checker = ThetaChecker::new(sketch.k(), sketch.relaxation());

    let total = 120_000u64;
    let stream: Vec<u64> = (0..total)
        .map(|i| normalize_hash(i.hash_with_seed(SEED)))
        .collect();

    let mut handles: Vec<_> = (0..writers).map(|_| sketch.writer()).collect();
    let mut fed = 0usize;
    for chunk in stream.chunks(15_000) {
        for (i, &h) in chunk.iter().enumerate() {
            handles[i % writers].update_hash(h);
        }
        fed += chunk.len();
        for w in &mut handles {
            w.flush().unwrap();
        }
        sketch.quiesce();
        checker
            .check_at(&stream, fed, &obs(&sketch))
            .unwrap_or_else(|v| panic!("violation after {fed} updates: {v}"));
    }
}

#[test]
fn theorem1_holds_for_concurrent_queries_with_window() {
    // Single writer ingests; we interleave queries. Each observation is
    // checked against the window [flushed_before, issued_so_far]: the
    // snapshot may lag the issued count by buffered-but-unflushed
    // updates, and the checker's r covers the in-flight hand-off.
    let sketch = ConcurrentThetaBuilder::new()
        .lg_k(8)
        .seed(SEED)
        .writers(1)
        .max_concurrency_error(1.0)
        .build()
        .unwrap();
    let r = sketch.relaxation();
    let checker = ThetaChecker::new(sketch.k(), r);
    let total = 60_000u64;
    let stream: Vec<u64> = (0..total)
        .map(|i| normalize_hash(i.hash_with_seed(SEED)))
        .collect();

    let mut w = sketch.writer();
    for (i, &h) in stream.iter().enumerate() {
        w.update_hash(h);
        if i % 7_919 == 0 && i > 0 {
            let snapshot = obs(&sketch);
            // The writer has issued i+1 updates; up to 2b of them may
            // still be local. The window accounts for that explicitly,
            // beyond it the r-relaxation must hold.
            let issued = i + 1;
            let lo = issued.saturating_sub(2 * r as usize);
            checker
                .check_window(&stream, lo, issued, &snapshot)
                .unwrap_or_else(|v| panic!("violation at update {issued}: {v}"));
        }
    }
}

#[test]
fn compact_outputs_of_concurrent_sketches_are_mergeable() {
    // Build three concurrent sketches over overlapping ranges; the union
    // of their compacts must estimate the union cardinality.
    let ranges = [(0u64, 150_000u64), (100_000, 250_000), (200_000, 350_000)];
    let mut union = ThetaUnion::new(11, SEED).unwrap();
    for (lo, hi) in ranges {
        let sketch = ConcurrentThetaBuilder::new()
            .lg_k(11)
            .seed(SEED)
            .writers(2)
            .build()
            .unwrap();
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let mut w = sketch.writer();
                s.spawn(move || {
                    for i in ((lo + t)..hi).step_by(2) {
                        w.update(i);
                    }
                    w.flush().unwrap();
                });
            }
        });
        sketch.quiesce();
        union.update(&sketch.compact()).unwrap();
    }
    let est = union.result().estimate();
    let rel = (est - 350_000.0).abs() / 350_000.0;
    assert!(rel < 0.1, "union estimate {est}");
}

#[test]
fn estimate_is_fresh_within_relaxation_after_quiesce() {
    // Quantitative staleness: at a quiescent point the visible retained
    // count must equal the reference exactly (staleness 0), which is the
    // strongest form of the r-bound.
    let sketch = ConcurrentThetaBuilder::new()
        .lg_k(10)
        .seed(SEED)
        .writers(2)
        .max_concurrency_error(1.0)
        .build()
        .unwrap();
    let mut reference = QuickSelectThetaSketch::new(10, SEED).unwrap();
    let n = 100_000u64;
    {
        let mut w1 = sketch.writer();
        let mut w2 = sketch.writer();
        for i in 0..n {
            reference.update(i);
            if i % 2 == 0 {
                w1.update(i);
            } else {
                w2.update(i);
            }
        }
        w1.flush().unwrap();
        w2.flush().unwrap();
    }
    sketch.quiesce();
    let snap = sketch.snapshot();
    // Different merge interleavings can give a different theta trajectory
    // than the strictly sequential reference, so compare estimates not
    // exact state.
    let rel = (snap.estimate - reference.estimate()).abs() / reference.estimate();
    assert!(
        rel < 0.08,
        "estimates diverged: {} vs {}",
        snap.estimate,
        reference.estimate()
    );
}

#[test]
fn eager_phase_exactness_boundary() {
    // §5.3: within the eager limit the sketch is exact (sequential
    // semantics); this is the adaptation the paper adds for small streams.
    let sketch = ConcurrentThetaBuilder::new()
        .lg_k(12)
        .seed(SEED)
        .writers(2)
        .max_concurrency_error(0.04) // limit = 1250
        .build()
        .unwrap();
    let mut w = sketch.writer();
    for i in 0..1_249u64 {
        w.update(i);
    }
    assert_eq!(sketch.estimate(), 1_249.0, "eager phase must be exact");
    // Push past the limit: sketch leaves the eager phase and keeps
    // working (answers within the configured bound after quiesce).
    for i in 1_249..50_000u64 {
        w.update(i);
    }
    w.flush().unwrap();
    sketch.quiesce();
    let rel = (sketch.estimate() - 50_000.0).abs() / 50_000.0;
    assert!(rel < sketch.error_bound(), "post-transition error {rel}");
    assert!(!sketch.is_eager());
}
