//! Cross-crate property-based tests (proptest): invariants that must hold
//! for arbitrary streams, parameters, and split points.

use fcds::relaxation::checker::{ThetaChecker, ThetaObservation};
use fcds::relaxation::history::{History, Op};
use fcds::sketches::hash::Hashable;
use fcds::sketches::quantiles::QuantilesSketch;
use fcds::sketches::theta::{
    normalize_hash, KmvThetaSketch, QuickSelectThetaSketch, ThetaRead, ThetaUnion,
};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// KMV retains exactly the k smallest distinct hashes, for any stream.
    #[test]
    fn kmv_retains_k_smallest(values in prop::collection::vec(0u64..5_000, 1..2_000), k in 3usize..64) {
        let seed = 7;
        let mut sketch = KmvThetaSketch::new(k, seed).unwrap();
        for &v in &values {
            sketch.update(v);
        }
        let mut expected: Vec<u64> = values
            .iter()
            .map(|v| normalize_hash(v.hash_with_seed(seed)))
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        expected.sort_unstable();
        expected.truncate(k);
        let mut got: Vec<u64> = sketch.hashes().collect();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Exact mode: both Θ families count distinct items exactly below k.
    #[test]
    fn exact_mode_counts_distinct(values in prop::collection::vec(0u64..200, 0..200)) {
        let distinct = values.iter().collect::<HashSet<_>>().len() as f64;
        let mut kmv = KmvThetaSketch::new(1024, 1).unwrap();
        let mut qs = QuickSelectThetaSketch::new(10, 1).unwrap();
        for &v in &values {
            kmv.update(v);
            qs.update(v);
        }
        prop_assert_eq!(kmv.estimate(), distinct);
        prop_assert_eq!(qs.estimate(), distinct);
    }

    /// Merging a split of a stream equals processing the whole stream
    /// (KMV state is a pure function of the distinct hash set).
    #[test]
    fn kmv_merge_split_invariance(
        values in prop::collection::vec(0u64..100_000, 1..3_000),
        split in 0usize..3_000,
    ) {
        let split = split.min(values.len());
        let seed = 3;
        let k = 64;
        let mut whole = KmvThetaSketch::new(k, seed).unwrap();
        for &v in &values {
            whole.update(v);
        }
        let mut left = KmvThetaSketch::new(k, seed).unwrap();
        let mut right = KmvThetaSketch::new(k, seed).unwrap();
        for &v in &values[..split] {
            left.update(v);
        }
        for &v in &values[split..] {
            right.update(v);
        }
        left.merge(&right).unwrap();
        let mut a: Vec<u64> = left.hashes().collect();
        let mut b: Vec<u64> = whole.hashes().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert_eq!(left.theta(), whole.theta());
    }

    /// Union estimate ≈ distinct count of the union, for arbitrary
    /// overlapping ranges.
    #[test]
    fn union_estimates_union(
        a_start in 0u64..50_000, a_len in 1u64..80_000,
        b_start in 0u64..50_000, b_len in 1u64..80_000,
    ) {
        let seed = 11;
        let mut sa = QuickSelectThetaSketch::new(10, seed).unwrap();
        let mut sb = QuickSelectThetaSketch::new(10, seed).unwrap();
        for v in a_start..a_start + a_len {
            sa.update(v);
        }
        for v in b_start..b_start + b_len {
            sb.update(v);
        }
        let mut u = ThetaUnion::new(10, seed).unwrap();
        u.update(&sa).unwrap();
        u.update(&sb).unwrap();
        let truth = {
            let (a0, a1) = (a_start, a_start + a_len);
            let (b0, b1) = (b_start, b_start + b_len);
            let overlap = a1.min(b1).saturating_sub(a0.max(b0));
            (a_len + b_len - overlap) as f64
        };
        let est = u.result().estimate();
        let rel = (est - truth).abs() / truth;
        prop_assert!(rel < 0.2, "union {est} vs truth {truth}");
    }

    /// The quantiles sketch's weight invariant holds for any stream, and
    /// every quantile it returns is an element of the stream.
    #[test]
    fn quantiles_weight_and_membership(
        values in prop::collection::vec(0u64..10_000, 1..4_000),
        k in 2usize..64,
        phi in 0.0f64..=1.0,
    ) {
        let mut q = QuantilesSketch::with_seed(k, 5).unwrap();
        for &v in &values {
            q.update(v);
        }
        prop_assert!(q.check_weight_invariant());
        let got = q.quantile(phi).unwrap();
        prop_assert!(values.contains(&got), "quantile {got} not in stream");
    }

    /// Rank and quantile are mutually consistent: rank(quantile(phi))
    /// is within the sketch's error of phi.
    #[test]
    fn quantiles_rank_round_trip(
        n in 100u64..20_000,
        phi in 0.05f64..=0.95,
    ) {
        let k = 128;
        let mut q = QuantilesSketch::<u64>::with_seed(k, 9).unwrap();
        for i in 0..n {
            q.update(i);
        }
        let v = q.quantile(phi).unwrap();
        let r = q.rank(&v);
        let eps = fcds::sketches::quantiles::epsilon_for_k(k);
        prop_assert!((r - phi).abs() < 4.0 * eps + 2.0 / n as f64,
            "phi={phi} rank={r}");
    }

    /// The relaxation checker accepts every prefix state of a sequential
    /// run with r = 0 (soundness on the happy path).
    #[test]
    fn checker_accepts_sequential_prefixes(
        n in 100u64..5_000,
        lg_k in 4u8..7,
        at in 1usize..5_000,
    ) {
        let seed = 13;
        let stream: Vec<u64> = (0..n).map(|i| normalize_hash(i.hash_with_seed(seed))).collect();
        let at = at.min(stream.len());
        let mut sketch = QuickSelectThetaSketch::new(lg_k, seed).unwrap();
        for &h in &stream[..at] {
            sketch.update_hash(h);
        }
        let obs = ThetaObservation {
            theta: sketch.theta(),
            retained: sketch.retained() as u64,
            estimate: sketch.estimate(),
        };
        let checker = ThetaChecker::new(1 << lg_k, 0);
        prop_assert!(checker.check_at(&stream, at, &obs).is_ok());
    }

    /// Any subsequence H of H′ obtained by deleting ≤ r elements is an
    /// r-relaxation of H′ (drop-only case of Definition 2).
    #[test]
    fn dropping_subsequence_is_relaxation(
        n in 1usize..40,
        keep_mask in prop::collection::vec(any::<bool>(), 40),
    ) {
        let mut h_prime = History::new();
        for i in 0..n as u64 {
            h_prime.push(i, Op::Update(i));
        }
        let mut h = History::new();
        let mut dropped = 0usize;
        for (i, keep) in keep_mask.iter().enumerate().take(n) {
            if *keep {
                h.push(i as u64, Op::Update(i as u64));
            } else {
                dropped += 1;
            }
        }
        prop_assert!(h.is_r_relaxation_of(&h_prime, dropped));
        if dropped > 0 {
            prop_assert!(!h.is_r_relaxation_of(&h_prime, dropped - 1));
        }
    }

    /// HLL merge is register-wise max: merge(A, B) estimates at least as
    /// much as each input and is symmetric.
    #[test]
    fn hll_merge_dominates_inputs(
        a_n in 1u64..20_000,
        b_n in 1u64..20_000,
    ) {
        use fcds::sketches::hll::HllSketch;
        let mut a = HllSketch::new(10, 3).unwrap();
        let mut b = HllSketch::new(10, 3).unwrap();
        for i in 0..a_n {
            a.update(i);
        }
        for i in 0..b_n {
            b.update(i + 1_000_000);
        }
        let (ea, eb) = (a.estimate(), b.estimate());
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        prop_assert_eq!(&ab, &ba);
        prop_assert!(ab.estimate() >= ea.max(eb) * 0.999);
    }
}
