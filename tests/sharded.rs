//! Cross-crate properties of the K-way sharded engine: sharded histories
//! stay within the `r = 2Nb` relaxation — widened to
//! `r + K·(M − 1)·b` when image publication is throttled to every M-th
//! merge — shard-count independent, both propagation backends; and
//! merged queries are lossless against a sequential oracle fed the same
//! stream (M = 1). Sharded Quantiles rank estimates under the
//! copy-on-write ladder stay within the checker's relaxation envelope of
//! the sequential sketch on the same stream. The Θ grid additionally
//! covers the batched ingestion fast path (`update_batch` with chunks
//! larger than `b`, forcing mid-batch hand-offs) against the same
//! envelopes as scalar ingestion.

use fcds::core::hll::ConcurrentHllBuilder;
use fcds::core::quantiles::ConcurrentQuantilesBuilder;
use fcds::core::theta::ConcurrentThetaBuilder;
use fcds::core::PropagationBackendKind;
use fcds::relaxation::checker::{ThetaChecker, ThetaObservation};
use fcds::relaxation::checker_quantiles::{QuantileObservation, QuantilesChecker};
use fcds::relaxation::sharded::sharded_query_relaxation;
use fcds::sketches::hash::Hashable;
use fcds::sketches::hll::HllSketch;
use fcds::sketches::quantiles::{epsilon_for_k, QuantilesSketch};
use fcds::sketches::theta::normalize_hash;
use proptest::prelude::*;

const SEED: u64 = 9001;

fn backends() -> [PropagationBackendKind; 2] {
    [
        PropagationBackendKind::DedicatedThread,
        PropagationBackendKind::WriterAssisted,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Theorem 1 on sharded executions: with 4 writers' partial buffers
    /// still in flight (writers alive, nothing flushed), the merged query
    /// must be admissible for the full issued prefix under the adjusted
    /// bound r_query = 2Nb + K·(M − 1)·b — for K ∈ {1, 2, 4},
    /// image_every M ∈ {1, 4}, and both backends (M = 1 makes r_query the
    /// plain r = 2Nb). After flush + quiesce the same query must be
    /// admissible with r = 0 for any M: quiesce republishes skipped
    /// images, and the shard merge itself adds no relaxation.
    #[test]
    fn sharded_histories_pass_the_adjusted_checker(
        per_writer in 2_000u64..6_000,
        lg_k in 6u8..=12,
        shard_sel in 0usize..3,
        image_m in 0usize..2,
        writer_assisted in any::<bool>(),
        batched in any::<bool>(),
    ) {
        let shards = [1usize, 2, 4][shard_sel];
        let m = [1u64, 4][image_m];
        let writers = 4usize;
        let backend = backends()[writer_assisted as usize];
        let sketch = ConcurrentThetaBuilder::new()
            .lg_k(lg_k)
            .seed(SEED)
            .writers(writers)
            .shards(shards)
            .max_concurrency_error(1.0) // no eager: buffers from the start
            .backend(backend)
            .image_every(m)
            .build()
            .unwrap();
        let b = sketch.relaxation() / (2 * writers as u64);
        let r_query = sketch.query_relaxation();
        // The engine's bound must agree with fcds-relaxation's
        // executable reference for the same parameters.
        prop_assert_eq!(
            r_query,
            sharded_query_relaxation(sketch.relaxation(), shards, m, b)
        );
        let checker = ThetaChecker::new(sketch.k(), r_query);

        let mut handles: Vec<_> = (0..writers).map(|_| sketch.writer()).collect();
        let mut stream: Vec<u64> = Vec::new();
        let total = writers as u64 * per_writer;
        if batched {
            // Batched ingestion path: each writer takes its next chunk in
            // turn (37 is odd and > b, so hand-offs happen mid-batch);
            // the issued order is chunk-interleaved, a valid schedule for
            // the same checker envelope.
            const CHUNK: u64 = 37;
            let mut next = 0u64;
            'outer: loop {
                for h in handles.iter_mut() {
                    if next >= total {
                        break 'outer;
                    }
                    let hi = (next + CHUNK).min(total);
                    let vals: Vec<u64> = (next..hi).collect();
                    h.update_batch(&vals);
                    stream.extend(vals.iter().map(|v| normalize_hash(v.hash_with_seed(SEED))));
                    next = hi;
                }
            }
        } else {
            for i in 0..total {
                let w = (i % writers as u64) as usize;
                handles[w].update(i);
                stream.push(normalize_hash(i.hash_with_seed(SEED)));
            }
        }

        // Writers alive, partial buffers unflushed: the snapshot may miss
        // up to 2b updates per writer plus (M − 1)·b per shard, no more.
        let snap = sketch.snapshot();
        let obs = ThetaObservation {
            theta: snap.theta,
            retained: snap.retained,
            estimate: snap.estimate,
        };
        checker
            .check_at(&stream, stream.len(), &obs)
            .unwrap_or_else(|v| panic!("K={shards} M={m} {backend:?} r={r_query}: {v}"));

        // Flushed and quiesced: zero staleness, even across the merge and
        // for throttled images (quiesce republishes them).
        for w in &mut handles {
            w.flush().unwrap();
        }
        sketch.quiesce();
        let snap = sketch.snapshot();
        let obs = ThetaObservation {
            theta: snap.theta,
            retained: snap.retained,
            estimate: snap.estimate,
        };
        ThetaChecker::new(sketch.k(), 0)
            .check_at(&stream, stream.len(), &obs)
            .unwrap_or_else(|v| panic!("K={shards} M={m} {backend:?} quiesced: {v}"));
    }

    /// Lossless merge: a K-shard HLL run must land on exactly the
    /// registers (and estimate) of one sequential sketch fed the same
    /// stream — register-wise max is partition- and order-insensitive.
    #[test]
    fn merged_query_equals_sequential_oracle(
        n in 5_000u64..30_000,
        modulus in 500u64..20_000, // duplicate ratio varies
        shard_sel in 0usize..3,
        writer_assisted in any::<bool>(),
    ) {
        let shards = [1usize, 2, 4][shard_sel];
        let backend = backends()[writer_assisted as usize];
        let sketch = ConcurrentHllBuilder::new()
            .lg_m(10)
            .seed(SEED)
            .writers(4)
            .shards(shards)
            .max_concurrency_error(1.0)
            .backend(backend)
            .build()
            .unwrap();
        let mut oracle = HllSketch::new(10, SEED).unwrap();
        {
            let mut handles: Vec<_> = (0..4).map(|_| sketch.writer()).collect();
            for i in 0..n {
                let item = i % modulus;
                oracle.update(item);
                handles[(i % 4) as usize].update(item);
            }
        } // writers drop: partial buffers flushed
        sketch.quiesce();
        prop_assert_eq!(sketch.registers(), oracle.clone());
        prop_assert_eq!(sketch.estimate(), oracle.estimate());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// §6.2 on sharded executions under the copy-on-write ladder: the
    /// merged rank estimates must be admissible under the relaxed PAC
    /// envelope — for K ∈ {1, 2, 4}, image_every M ∈ {1, 4}, and both
    /// backends. Mid-stream (writers alive, partial buffers unflushed)
    /// the envelope uses the engine's conservative merged-query bound
    /// `r_query = 2Nb + K·(M − 1)·b`; after flush + quiesce the same
    /// queries must be admissible with `r = 0` (the ladder publication
    /// and the shard merge add no relaxation of their own), and the
    /// answers must agree with a sequential sketch fed the same stream
    /// to within the PAC rank error both sides carry.
    #[test]
    fn sharded_quantiles_stay_within_the_relaxation_envelope(
        per_writer in 2_000u64..6_000,
        shard_sel in 0usize..3,
        image_m in 0usize..2,
        writer_assisted in any::<bool>(),
    ) {
        let k = 128usize;
        let shards = [1usize, 2, 4][shard_sel];
        let m = [1u64, 4][image_m];
        let writers = 4usize;
        let backend = backends()[writer_assisted as usize];
        let sketch = ConcurrentQuantilesBuilder::new()
            .k(k)
            .oracle_seed(SEED)
            .writers(writers)
            .shards(shards)
            .max_concurrency_error(1.0) // no eager: buffers from the start
            .backend(backend)
            .image_every(m)
            .build::<u64>()
            .unwrap();
        let r_query = sketch.query_relaxation();

        // Permuted distinct stream so the level ladders are exercised
        // non-trivially on every shard.
        let n = writers as u64 * per_writer;
        let stream: Vec<u64> = (0..n).map(|i| (i * 2_654_435_761) % n).collect();
        let mut handles: Vec<_> = (0..writers).map(|_| sketch.writer()).collect();
        for (i, &v) in stream.iter().enumerate() {
            handles[i % writers].update(v);
        }

        // Slack on ε: the empirical fit is not a hard bound (same
        // convention as the sequential checker tests).
        let phis = [0.1, 0.5, 0.9];
        let eps = 3.0 * epsilon_for_k(k);
        let mid_checker = QuantilesChecker::new(eps, r_query);
        let snap = sketch.snapshot();
        if !snap.is_empty() {
            for phi in phis {
                let obs = QuantileObservation { phi, answer: snap.quantile(phi).unwrap() };
                mid_checker
                    .check_at(&stream, stream.len(), &obs)
                    .unwrap_or_else(|v| panic!("K={shards} M={m} {backend:?} mid-stream phi={phi}: {v}"));
            }
        }

        // Flushed and quiesced: zero staleness for any M, and agreement
        // with a sequential oracle on the same stream.
        for w in &mut handles {
            w.flush().unwrap();
        }
        sketch.quiesce();
        prop_assert_eq!(sketch.visible_n(), n, "sample-union merge must be lossless in n");
        let mut sequential = QuantilesSketch::<u64>::with_seed(k, SEED ^ 1).unwrap();
        for &v in &stream {
            sequential.update(v);
        }
        let quiesced_checker = QuantilesChecker::new(eps, 0);
        for phi in phis {
            let answer = sketch.quantile(phi).unwrap();
            let obs = QuantileObservation { phi, answer };
            quiesced_checker
                .check_at(&stream, stream.len(), &obs)
                .unwrap_or_else(|v| panic!("K={shards} M={m} {backend:?} quiesced phi={phi}: {v}"));
            // Both sides carry ≤ ε rank error on the same stream, so
            // their answers' ranks differ by at most 2ε (plus fit slack).
            let seq_rank = sequential.rank(&answer);
            prop_assert!(
                (seq_rank - phi).abs() <= 2.0 * eps,
                "K={shards} M={m} {backend:?}: sharded answer for phi={phi} has sequential rank {seq_rank}"
            );
        }
    }
}

#[test]
fn sharded_compact_union_matches_oracle_estimate() {
    // The compact() of a sharded Θ run is the untrimmed union of the
    // shard images; its estimate must track a sequential oracle on the
    // same stream within estimator noise.
    use fcds::sketches::theta::{QuickSelectThetaSketch, ThetaRead};
    let n = 200_000u64;
    let mut oracle = QuickSelectThetaSketch::new(11, SEED).unwrap();
    for i in 0..n {
        oracle.update(i);
    }
    let sketch = ConcurrentThetaBuilder::new()
        .lg_k(11)
        .seed(SEED)
        .writers(4)
        .shards(4)
        .max_concurrency_error(1.0)
        .build()
        .unwrap();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let mut w = sketch.writer();
            s.spawn(move || {
                for i in (t..n).step_by(4) {
                    w.update(i);
                }
                w.flush().unwrap();
            });
        }
    });
    sketch.quiesce();
    let merged = sketch.compact();
    let rel = (merged.estimate() - oracle.estimate()).abs() / oracle.estimate();
    assert!(
        rel < 0.05,
        "merged {} vs oracle {}",
        merged.estimate(),
        oracle.estimate()
    );
    assert_eq!(merged.estimate(), sketch.snapshot().estimate);
}
