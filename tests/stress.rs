//! Stress and lifecycle tests: writer churn, heavy query pressure,
//! shutdown semantics, and long mixed runs. These target the hand-off
//! protocol's edge cases rather than statistical accuracy.

use fcds::core::hll::ConcurrentHllBuilder;
use fcds::core::theta::ConcurrentThetaBuilder;
use fcds::FlushError;
use std::sync::atomic::{AtomicBool, Ordering};

#[test]
fn writer_churn_many_generations() {
    // Writers repeatedly join, write, and leave while others are active;
    // every generation's updates must be eventually visible.
    let sketch = ConcurrentThetaBuilder::new()
        .lg_k(10)
        .seed(1)
        .writers(4)
        .max_concurrency_error(1.0)
        .build()
        .unwrap();
    let n_gens = 8u64;
    let per_gen = 20_000u64;
    for gen in 0..n_gens {
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let mut w = sketch.writer();
                s.spawn(move || {
                    let base = gen * 4 * per_gen + t * per_gen;
                    for i in 0..per_gen {
                        w.update(base + i);
                    }
                    // Dropped here: flush + retire.
                });
            }
        });
    }
    sketch.quiesce();
    let truth = (n_gens * 4 * per_gen) as f64;
    let rel = (sketch.estimate() - truth).abs() / truth;
    assert!(rel < 0.1, "estimate {} vs {truth}", sketch.estimate());
}

#[test]
fn query_hammering_does_not_disturb_ingestion() {
    let sketch = ConcurrentThetaBuilder::new()
        .lg_k(11)
        .seed(2)
        .writers(2)
        .build()
        .unwrap();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for t in 0..2u64 {
            let mut w = sketch.writer();
            s.spawn(move || {
                for i in 0..300_000u64 {
                    w.update(t * 300_000 + i);
                }
                w.flush().unwrap();
            });
        }
        for _ in 0..6 {
            let (sk, stop) = (&sketch, &stop);
            s.spawn(move || {
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    std::hint::black_box(sk.estimate());
                    reads += 1;
                }
                assert!(reads > 0);
            });
        }
        // Writers joined by scope when their closures end; stop readers.
        // (Spawned writer threads finish first because readers loop on a
        // flag we only set after the writers' joins complete — emulate by
        // sleeping briefly then setting the flag.)
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });
    sketch.quiesce();
    let rel = (sketch.estimate() - 600_000.0).abs() / 600_000.0;
    assert!(rel < 0.1, "estimate {}", sketch.estimate());
}

#[test]
fn dropping_sketch_before_writers_is_safe() {
    // Writers must not deadlock or crash if the main handle (and its
    // propagator) goes away first; their remaining updates are dropped by
    // the documented teardown semantics.
    let sketch = ConcurrentThetaBuilder::new()
        .lg_k(8)
        .seed(3)
        .writers(2)
        .max_concurrency_error(1.0)
        .build()
        .unwrap();
    let mut w1 = sketch.writer();
    let mut w2 = sketch.writer();
    for i in 0..10_000u64 {
        w1.update(i);
        w2.update(i + 10_000);
    }
    drop(sketch); // stops the propagator
                  // Writers keep updating and flushing into a dead engine: must return
                  // the typed shutdown error, not hang.
    for i in 0..1_000u64 {
        w1.update(i + 50_000);
        w2.update(i + 60_000);
    }
    assert_eq!(w1.flush(), Err(FlushError::ShuttingDown));
    assert_eq!(w2.flush(), Err(FlushError::ShuttingDown));
    drop(w1);
    drop(w2);
}

#[test]
fn rapid_create_destroy_cycles() {
    // Engine startup/shutdown leaks or races show up here.
    for i in 0..50 {
        let sketch = ConcurrentThetaBuilder::new()
            .lg_k(6)
            .seed(i)
            .writers(1)
            .build()
            .unwrap();
        let mut w = sketch.writer();
        for v in 0..500u64 {
            w.update(v);
        }
        w.flush().unwrap();
        sketch.quiesce();
        assert!(sketch.estimate() > 0.0);
    }
}

#[test]
fn hll_under_writer_churn() {
    let sketch = ConcurrentHllBuilder::new()
        .lg_m(11)
        .seed(7)
        .writers(3)
        .build()
        .unwrap();
    for gen in 0..5u64 {
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let mut w = sketch.writer();
                s.spawn(move || {
                    for i in 0..30_000u64 {
                        w.update(gen * 90_000 + t * 30_000 + i);
                    }
                });
            }
        });
    }
    sketch.quiesce();
    let truth = (5 * 90_000) as f64;
    let rel = (sketch.estimate() - truth).abs() / truth;
    assert!(rel < 0.1, "estimate {}", sketch.estimate());
}

#[test]
fn zero_update_writers_are_harmless() {
    let sketch = ConcurrentThetaBuilder::new()
        .lg_k(8)
        .seed(5)
        .writers(4)
        .build()
        .unwrap();
    {
        let _w1 = sketch.writer();
        let _w2 = sketch.writer();
        let _w3 = sketch.writer();
    } // all retire without a single update
    sketch.quiesce();
    assert_eq!(sketch.estimate(), 0.0);
}

#[test]
fn duplicate_heavy_concurrent_stream() {
    // All writers hammer the same small key space: dedup must hold across
    // local buffers (duplicates merge at the global sketch).
    let sketch = ConcurrentThetaBuilder::new()
        .lg_k(10)
        .seed(6)
        .writers(4)
        .build()
        .unwrap();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let mut w = sketch.writer();
            s.spawn(move || {
                for round in 0..20u64 {
                    for v in 0..1_000u64 {
                        w.update(v + (round % 2) * 500); // overlapping windows
                    }
                }
                w.flush().unwrap();
            });
        }
    });
    sketch.quiesce();
    // Key space is 0..1500.
    assert_eq!(sketch.estimate(), 1_500.0, "exact mode dedup failed");
}
