//! Sequence helpers. Only [`SliceRandom::shuffle`] is provided.

use crate::{Rng, RngCore};

/// Extension trait adding random reordering to slices.
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates, uniform over permutations).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}
