//! Minimal offline stand-in for the `rand` crate (0.9 API).
//!
//! The build environment has no crates.io access, so this shim provides
//! exactly the surface the workspace uses: [`rngs::SmallRng`] (a
//! xoshiro256++ generator seeded with SplitMix64), the [`Rng`] extension
//! methods `random`, `random_range`, `random_bool` and `random_ratio`,
//! [`SeedableRng::seed_from_u64`], and [`seq::SliceRandom::shuffle`].
//! Swap the `rand` entry in the workspace `Cargo.toml` to the real crate
//! when network access is available; no call site needs to change.

pub mod rngs;
pub mod seq;

/// Core generator interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `state`.
    fn seed_from_u64(state: u64) -> Self;

    /// Creates a generator from system entropy (`std`'s per-process
    /// random hasher keys mixed with a monotonically bumped counter, so
    /// repeated calls in one process also diverge).
    fn from_os_rng() -> Self {
        use std::hash::{BuildHasher, Hasher};
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
        hasher.write_u64(COUNTER.fetch_add(1, Ordering::Relaxed));
        Self::seed_from_u64(hasher.finish())
    }
}

/// Types samplable uniformly from their full domain by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable as [`Rng::random_range`] endpoints.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `hi > lo` is the caller's obligation.
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "random_range called with empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Unbiased-enough widening multiply (Lemire); spans here are
                // far below 2^64 so the residual bias is negligible.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                if hi == <$t>::MAX {
                    // Widen so the +1 on the span cannot wrap. Bit-width of
                    // usize is platform-dependent but never above 64.
                    let span = (hi as u128) - (lo as u128) + 1;
                    let draw = ((rng.next_u64() as u128 * span) >> 64) as u64;
                    return lo.wrapping_add(draw as $t);
                }
                Self::sample_below(rng, lo, hi.wrapping_add(1))
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        debug_assert!(lo < hi, "random_range called with empty range");
        let unit: f64 = Standard::sample(rng);
        let v = lo + unit * (hi - lo);
        // lo + unit*(hi-lo) can round up to exactly hi; keep the range
        // half-open like the real crate does.
        if v >= hi {
            hi.next_down().max(lo)
        } else {
            v
        }
    }
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        // The closed upper endpoint has measure zero; sampling the
        // half-open interval is indistinguishable for test purposes.
        if lo == hi {
            return lo;
        }
        Self::sample_below(rng, lo, hi)
    }
}

/// Range arguments accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_below(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from the type's standard distribution
    /// (full integer domain, `[0, 1)` for floats, fair coin for `bool`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }

    /// Bernoulli draw: `true` with probability `numerator / denominator`.
    #[inline]
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        debug_assert!(denominator > 0 && numerator <= denominator);
        self.random_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_stays_in_bounds_and_hits_all() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        for _ in 0..1_000 {
            let v = rng.random_range(1u32..=100);
            assert!((1..=100).contains(&v));
        }
        // Inclusive ranges ending at MAX must not wrap the span.
        for _ in 0..1_000 {
            let v = rng.random_range(250u8..=u8::MAX);
            assert!(v >= 250);
        }
    }

    #[test]
    fn f64_range_excludes_upper_endpoint() {
        let mut rng = SmallRng::seed_from_u64(17);
        let (lo, hi) = (1.0f64, 1.0 + 2.0 * f64::EPSILON);
        for _ in 0..10_000 {
            let v = rng.random_range(lo..hi);
            assert!(v >= lo && v < hi, "f64 draw {v} escaped [{lo}, {hi})");
        }
    }

    #[test]
    fn bool_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(11);
        let heads = (0..100_000).filter(|_| rng.random::<bool>()).count();
        assert!((40_000..60_000).contains(&heads));
        let biased = (0..100_000).filter(|_| rng.random_bool(0.1)).count();
        assert!((7_000..13_000).contains(&biased));
        let ratio = (0..100_000).filter(|_| rng.random_ratio(1, 4)).count();
        assert!((20_000..30_000).contains(&ratio));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 items left them sorted");
    }
}
