//! Named generators. Only [`SmallRng`] is provided.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator: xoshiro256++ with SplitMix64
/// seed expansion (the same family the real `rand::rngs::SmallRng` uses on
/// 64-bit targets).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}
