//! Minimal offline stand-in for `criterion`.
//!
//! Keeps the six fcds benches compiling and runnable without crates.io:
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `Throughput`, `BenchmarkId`, and
//! `Bencher::iter`. Each benchmark runs a short warm-up followed by a
//! fixed number of individually timed iterations and prints the mean,
//! median, and p95 wall-clock time (plus throughput when declared) —
//! honest numbers with just enough order statistics to read results on a
//! noisy shared-CPU CI host; none of criterion's outlier rejection,
//! plots, or baseline comparisons.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations timed per benchmark (after warm-up).
const MEASURE_ITERS: u32 = 10;
const WARMUP_ITERS: u32 = 2;

/// Declared work-per-iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A benchmark's name, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (the group supplies the function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Names accepted wherever criterion takes `impl Into<BenchmarkId>`.
pub trait IntoBenchmarkId {
    /// Converts to the canonical id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Per-iteration wall-clock samples (empty until `iter` runs).
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the shim's fixed iteration count, recording
    /// each iteration individually so the report can show order
    /// statistics, not just the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        self.samples = (0..MEASURE_ITERS)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }

    /// Mean duration per iteration.
    pub fn mean(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<Duration>() / self.samples.len() as u32)
    }

    /// The q-th quantile (0 ≤ q ≤ 1) of the per-iteration samples, by the
    /// nearest-rank method.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let (Some(mean), Some(median), Some(p95)) = (b.mean(), b.quantile(0.5), b.quantile(0.95))
    else {
        println!("{id:<50} (no measurement)");
        return;
    };
    // Throughput from the median: on a noisy 1-CPU host a single
    // preempted iteration skews the mean, while the median stays
    // representative of the steady state.
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  {:>12.2} Melem/s", per_sec / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  {:>12.2} MiB/s", per_sec / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{id:<50} mean {mean:>10.2?}  med {median:>10.2?}  p95 {p95:>10.2?}/iter{rate}");
}

/// A named set of related benchmarks sharing a throughput declaration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the work one iteration performs (reported as a rate).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Ignored by the shim (kept for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored by the shim (kept for API compatibility).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ignored by the shim (kept for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into_id()),
            &b,
            self.throughput,
        );
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.into_id()),
            &b,
            self.throughput,
        );
        self
    }

    /// Ends the group (a no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&id.into_id(), &b, None);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a function bundling benchmark functions, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` the harness passes flags like `--test`;
            // the shim has no filtering, so arguments are ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1000));
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..1000u64 * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_bencher_run() {
        benches();
    }

    #[test]
    fn bencher_records_timing() {
        let mut b = Bencher::default();
        b.iter(|| black_box(21u64 * 2));
        assert_eq!(b.samples.len(), MEASURE_ITERS as usize);
        assert!(b.mean().is_some());
    }

    #[test]
    fn quantiles_are_order_statistics_of_the_samples() {
        let mut b = Bencher {
            samples: (1..=10u64).map(Duration::from_millis).collect(),
        };
        assert_eq!(b.quantile(0.5), Some(Duration::from_millis(5)));
        assert_eq!(b.quantile(0.95), Some(Duration::from_millis(10)));
        assert_eq!(b.quantile(0.0), Some(Duration::from_millis(1)));
        assert_eq!(b.quantile(1.0), Some(Duration::from_millis(10)));
        assert_eq!(b.mean(), Some(Duration::from_micros(5_500)));
        // Median is robust to one outlier; the mean is not.
        b.samples[9] = Duration::from_secs(10);
        assert_eq!(b.quantile(0.5), Some(Duration::from_millis(5)));
        assert!(b.mean().unwrap() > Duration::from_millis(500));
    }

    #[test]
    fn empty_bencher_reports_no_measurement() {
        let b = Bencher::default();
        assert_eq!(b.mean(), None);
        assert_eq!(b.quantile(0.5), None);
        report("empty", &b, None); // must not panic
    }
}
