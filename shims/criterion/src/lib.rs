//! Minimal offline stand-in for `criterion`.
//!
//! Keeps the six fcds benches compiling and runnable without crates.io:
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `Throughput`, `BenchmarkId`, and
//! `Bencher::iter`. Each benchmark runs a short warm-up followed by a
//! fixed number of timed iterations and prints the mean wall-clock time
//! (plus throughput when declared) — honest numbers, none of criterion's
//! statistics, outlier rejection, plots, or baseline comparisons.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations timed per benchmark (after warm-up).
const MEASURE_ITERS: u32 = 10;
const WARMUP_ITERS: u32 = 2;

/// Declared work-per-iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// A benchmark's name, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (the group supplies the function name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Names accepted wherever criterion takes `impl Into<BenchmarkId>`.
pub trait IntoBenchmarkId {
    /// Converts to the canonical id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times `routine` over the shim's fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = MEASURE_ITERS;
    }
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{id:<50} (no measurement)");
        return;
    }
    let per_iter = b.elapsed / b.iters;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 / per_iter.as_secs_f64();
            format!("  {:>12.2} Melem/s", per_sec / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 / per_iter.as_secs_f64();
            format!("  {:>12.2} MiB/s", per_sec / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{id:<50} {per_iter:>12.2?}/iter{rate}");
}

/// A named set of related benchmarks sharing a throughput declaration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the work one iteration performs (reported as a rate).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Ignored by the shim (kept for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored by the shim (kept for API compatibility).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ignored by the shim (kept for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into_id()),
            &b,
            self.throughput,
        );
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.into_id()),
            &b,
            self.throughput,
        );
        self
    }

    /// Ends the group (a no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&id.into_id(), &b, None);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a function bundling benchmark functions, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test` the harness passes flags like `--test`;
            // the shim has no filtering, so arguments are ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1000));
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..1000u64 * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_and_bencher_run() {
        benches();
    }

    #[test]
    fn bencher_records_timing() {
        let mut b = Bencher::default();
        b.iter(|| black_box(21u64 * 2));
        assert!(b.iters > 0);
    }
}
