//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides exactly the surface the fcds wire formats use: an immutable
//! [`Bytes`] buffer, a growable [`BytesMut`] builder, little-endian
//! [`BufMut`] writers, and a [`Buf`] reader implemented for `&[u8]`.
//! Unlike the real crate there is no reference-counted zero-copy
//! machinery — `Bytes` owns a plain `Vec<u8>` — but the API semantics
//! (panics on under-read, LE encoding) match.

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer, produced by [`BytesMut::freeze`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.0
    }
}

/// A growable byte buffer for building wire images.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

macro_rules! put_le {
    ($($name:ident: $t:ty),* $(,)?) => {$(
        /// Appends the value in little-endian byte order.
        fn $name(&mut self, v: $t) {
            self.put_slice(&v.to_le_bytes());
        }
    )*};
}

/// Write side of the wire-format API (little-endian subset).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    put_le! {
        put_u16_le: u16,
        put_u32_le: u32,
        put_u64_le: u64,
        put_i64_le: i64,
        put_f64_le: f64,
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

macro_rules! get_le {
    ($($name:ident: $t:ty),* $(,)?) => {$(
        /// Reads the next value in little-endian byte order, advancing the
        /// cursor. Panics if fewer than `size_of::<T>()` bytes remain.
        fn $name(&mut self) -> $t {
            let mut raw = [0u8; std::mem::size_of::<$t>()];
            self.copy_to_slice(&mut raw);
            <$t>::from_le_bytes(raw)
        }
    )*};
}

/// Read side of the wire-format API (little-endian subset).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    /// Panics if not enough bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Skips `cnt` bytes. Panics if not enough bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads the next byte, advancing the cursor.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    get_le! {
        get_u16_le: u16,
        get_u32_le: u32,
        get_u64_le: u64,
        get_i64_le: i64,
        get_f64_le: f64,
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BytesMut::with_capacity(64);
        b.put_u8(0xAB);
        b.put_u16_le(0xBEEF);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(0x0123_4567_89AB_CDEF);
        b.put_i64_le(-42);
        b.put_f64_le(1.5);
        b.put_slice(b"xyz");
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 3);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
