//! Epoch-based memory reclamation, mirroring the `crossbeam-epoch` API
//! surface used by `fcds-core::sync::EpochCell`.
//!
//! # Scheme
//!
//! A global epoch counter advances only when every *pinned* thread has
//! been observed at the current epoch. A pointer retired (via
//! [`Guard::defer_destroy`]) while the global epoch reads `e` may still be
//! held by readers pinned at epochs `<= e` — the retirement epoch is read
//! *after* the unlinking swap, and the global counter is monotonic, so no
//! later reader can obtain the pointer. Advancing from `e` to `e + 2`
//! requires every such reader to unpin in between (a thread pinned at
//! `< current` blocks `try_advance`), so garbage retired at `e` is freed
//! once the global epoch reaches `e + 2`.
//!
//! Unlike crossbeam there are no thread-local garbage bags or lock-free
//! participant lists — registration, retirement, and collection go through
//! plain mutexes. Pinning itself (the hot path) is two atomic stores and a
//! fence. That is slower than crossbeam but semantically equivalent, which
//! is what the concurrency tests need.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// A participant's published state: `INACTIVE`, or `epoch | ACTIVE`.
const ACTIVE: u64 = 1 << 63;
const INACTIVE: u64 = 0;

/// How many pins a thread performs between collection attempts.
const PINS_BETWEEN_COLLECT: usize = 64;

struct Participant {
    /// `INACTIVE`, or the epoch this thread pinned at, tagged with `ACTIVE`.
    state: AtomicU64,
}

struct Deferred {
    ptr: *mut u8,
    drop_fn: unsafe fn(*mut u8),
}

// SAFETY: a `Deferred` is only created inside `defer_destroy`, whose caller
// promises (per the crossbeam contract) that destroying the pointee on
// another thread is sound.
unsafe impl Send for Deferred {}

struct Global {
    epoch: AtomicU64,
    participants: Mutex<Vec<&'static Participant>>,
    garbage: Mutex<Vec<(u64, Deferred)>>,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: AtomicU64::new(0),
        participants: Mutex::new(Vec::new()),
        garbage: Mutex::new(Vec::new()),
    })
}

impl Global {
    /// Advances the global epoch if every active participant has been
    /// observed at the current one, then frees sufficiently old garbage.
    fn collect(&self) {
        let epoch = self.epoch.load(Ordering::SeqCst);
        let all_current = {
            let participants = self.participants.lock().unwrap();
            participants.iter().all(|p| {
                let s = p.state.load(Ordering::SeqCst);
                s & ACTIVE == 0 || s & !ACTIVE == epoch
            })
        };
        if all_current {
            // A failed CAS means another thread advanced; that is progress too.
            let _ = self.epoch.compare_exchange(
                epoch,
                epoch + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
        let now = self.epoch.load(Ordering::SeqCst);
        let ripe: Vec<Deferred> = {
            let mut garbage = self.garbage.lock().unwrap();
            let mut ripe = Vec::new();
            garbage.retain_mut(|(retired, d)| {
                if now >= *retired + 2 {
                    ripe.push(Deferred {
                        ptr: d.ptr,
                        drop_fn: d.drop_fn,
                    });
                    false
                } else {
                    true
                }
            });
            ripe
        };
        // Run destructors outside the lock: they may be arbitrary user code.
        for d in ripe {
            // SAFETY: the epoch has advanced two steps past retirement, so
            // no pinned thread can still hold this pointer (see module docs).
            unsafe { (d.drop_fn)(d.ptr) };
        }
    }
}

struct LocalHandle {
    participant: &'static Participant,
    /// Pin nesting depth; the participant state is only touched at depth 0/1.
    depth: Cell<usize>,
    /// Pins since the last collection attempt.
    pin_count: Cell<usize>,
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        let mut participants = global().participants.lock().unwrap();
        if let Some(i) = participants
            .iter()
            .position(|p| std::ptr::eq(*p, self.participant))
        {
            participants.swap_remove(i);
        }
        // The participant's leaked allocation is intentionally small and
        // per-thread; reclaiming it would race with `collect`'s iteration.
    }
}

thread_local! {
    static LOCAL: LocalHandle = {
        let participant: &'static Participant = Box::leak(Box::new(Participant {
            state: AtomicU64::new(INACTIVE),
        }));
        global().participants.lock().unwrap().push(participant);
        LocalHandle {
            participant,
            depth: Cell::new(0),
            pin_count: Cell::new(0),
        }
    };
}

/// An RAII guard keeping the current thread pinned. While any guard is
/// alive, pointers loaded from [`Atomic`]s remain valid.
#[derive(Debug)]
pub struct Guard {
    /// Guards are thread-bound (they reference thread-local pin state).
    _not_send: PhantomData<*mut ()>,
}

/// Pins the current thread and returns the guard that unpins it on drop.
pub fn pin() -> Guard {
    LOCAL.with(|local| {
        let depth = local.depth.get();
        local.depth.set(depth + 1);
        if depth == 0 {
            // Publish "pinned at the current epoch"; retry if the epoch
            // moved underneath us so try_advance never misses a pin.
            loop {
                let e = global().epoch.load(Ordering::SeqCst);
                local.participant.state.store(e | ACTIVE, Ordering::SeqCst);
                std::sync::atomic::fence(Ordering::SeqCst);
                if global().epoch.load(Ordering::SeqCst) == e {
                    break;
                }
            }
            let pins = local.pin_count.get() + 1;
            local.pin_count.set(pins);
            if pins % PINS_BETWEEN_COLLECT == 0 {
                global().collect();
            }
        }
    });
    Guard {
        _not_send: PhantomData,
    }
}

impl Guard {
    /// Schedules `shared`'s pointee for destruction once no pinned thread
    /// can reach it.
    ///
    /// # Safety
    ///
    /// The caller must guarantee the pointer was unlinked from every shared
    /// location before this call and is not retired twice.
    pub unsafe fn defer_destroy<T>(&self, shared: Shared<'_, T>) {
        if shared.ptr.is_null() {
            return;
        }
        unsafe fn drop_box<T>(p: *mut u8) {
            drop(Box::from_raw(p as *mut T));
        }
        // Read the retirement epoch *after* the caller's unlinking swap:
        // monotonicity then guarantees every reader that could hold the
        // pointer pinned at an epoch <= this one.
        let retired = global().epoch.load(Ordering::SeqCst);
        global()
            .garbage
            .lock()
            .unwrap()
            .push((
                retired,
                Deferred {
                    ptr: shared.ptr as *mut u8,
                    drop_fn: drop_box::<T>,
                },
            ));
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        LOCAL.with(|local| {
            let depth = local.depth.get();
            local.depth.set(depth - 1);
            if depth == 1 {
                local
                    .participant
                    .state
                    .store(INACTIVE, Ordering::SeqCst);
            }
        });
    }
}

/// An owned heap allocation, insertable into an [`Atomic`].
#[derive(Debug)]
pub struct Owned<T> {
    boxed: Box<T>,
}

impl<T> Owned<T> {
    /// Allocates `value` on the heap.
    pub fn new(value: T) -> Self {
        Owned {
            boxed: Box::new(value),
        }
    }
}

/// A pointer loaded from an [`Atomic`], valid for the guard lifetime `'g`.
pub struct Shared<'g, T> {
    ptr: *mut T,
    _marker: PhantomData<&'g T>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<T> std::fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shared({:p})", self.ptr)
    }
}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Shared {
            ptr: std::ptr::null_mut(),
            _marker: PhantomData,
        }
    }

    /// Whether this is the null pointer.
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and its pointee must outlive the pin —
    /// guaranteed when it was loaded from a live [`Atomic`] under the guard
    /// and only ever retired through [`Guard::defer_destroy`].
    pub unsafe fn deref(&self) -> &'g T {
        &*self.ptr
    }
}

/// An atomic pointer to a heap allocation, the shim of `epoch::Atomic`.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

impl<T> std::fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Atomic({:p})", self.ptr.load(Ordering::Relaxed))
    }
}

impl<T> Atomic<T> {
    /// Allocates `value` and stores the pointer.
    pub fn new(value: T) -> Self {
        Atomic {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// Loads the current pointer under `guard`.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    /// Swaps in `new` (an [`Owned`] allocation or a [`Shared`] pointer such
    /// as [`Shared::null`]), returning the previous pointer under `guard`.
    pub fn swap<'g, P: Pointer<T>>(&self, new: P, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.swap(new.into_ptr(), ord),
            _marker: PhantomData,
        }
    }
}

/// Pointer kinds storable into an [`Atomic`] (crossbeam's `Pointer` trait).
pub trait Pointer<T> {
    /// Consumes the handle, yielding the raw pointer to store.
    fn into_ptr(self) -> *mut T;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_ptr(self) -> *mut T {
        Box::into_raw(self.boxed)
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_ptr(self) -> *mut T {
        self.ptr
    }
}

/// Counter used by the tests below to observe destructions.
#[doc(hidden)]
pub static TEST_DROPS: AtomicUsize = AtomicUsize::new(0);

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::SeqCst;
    use std::sync::Arc;

    /// Serializes the tests in this module: they all depend on the global
    /// epoch being able to advance, so a long-pinned thread in a parallel
    /// test would make reclamation-progress assertions flaky.
    static SERIAL: Mutex<()> = Mutex::new(());

    struct CountsDrop;
    impl Drop for CountsDrop {
        fn drop(&mut self) {
            TEST_DROPS.fetch_add(1, SeqCst);
        }
    }

    #[test]
    fn retired_values_are_eventually_destroyed() {
        let _serial = SERIAL.lock().unwrap();
        let a = Atomic::new(CountsDrop);
        let before = TEST_DROPS.load(SeqCst);
        for _ in 0..10_000 {
            let g = pin();
            let old = a.swap(Owned::new(CountsDrop), Ordering::AcqRel, &g);
            unsafe { g.defer_destroy(old) };
        }
        // Unpinned and with plenty of pins behind us, collection must have
        // freed almost everything (everything but the freshest epochs).
        global().collect();
        global().collect();
        global().collect();
        let freed = TEST_DROPS.load(SeqCst) - before;
        assert!(freed > 9_000, "only {freed} of 10000 retirees freed");
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let _serial = SERIAL.lock().unwrap();
        let val = Arc::new(42u64);
        let a = Atomic::new(Arc::clone(&val));
        let g_reader = pin();
        let shared = a.load(Ordering::Acquire, &g_reader);
        {
            let g = pin();
            let old = a.swap(Owned::new(Arc::new(0u64)), Ordering::AcqRel, &g);
            unsafe { g.defer_destroy(old) };
        }
        for _ in 0..10 {
            global().collect();
        }
        // The reader is still pinned at the retirement epoch, so the Arc
        // must not have been dropped: strong count still 2.
        assert_eq!(Arc::strong_count(&val), 2);
        let seen = unsafe { shared.deref() };
        assert_eq!(**seen, 42);
        drop(g_reader);
        for _ in 0..10 {
            global().collect();
        }
        assert_eq!(Arc::strong_count(&val), 1);
    }

    #[test]
    fn concurrent_swap_load_stress() {
        let _serial = SERIAL.lock().unwrap();
        let a = Arc::new(Atomic::new(Arc::new(0u64)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let a = Arc::clone(&a);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(SeqCst) {
                    i += 1;
                    let g = pin();
                    let old = a.swap(Owned::new(Arc::new(i)), Ordering::AcqRel, &g);
                    unsafe { g.defer_destroy(old) };
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..200_000 {
                        let g = pin();
                        let v = **unsafe { a.load(Ordering::Acquire, &g).deref() };
                        assert!(v >= last, "value went backwards: {v} < {last}");
                        last = v;
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, SeqCst);
        writer.join().unwrap();
    }
}
