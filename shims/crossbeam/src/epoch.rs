//! Epoch-based memory reclamation, mirroring the `crossbeam-epoch` API
//! surface used by `fcds-core::sync::EpochCell`.
//!
//! # Scheme
//!
//! A global epoch counter advances only when every *pinned* thread has
//! been observed at the current epoch. A pointer retired (via
//! [`Guard::defer_destroy`]) while the global epoch reads `e` may still be
//! held by readers pinned at epochs `<= e` — the retirement epoch is read
//! *after* the unlinking swap, and the global counter is monotonic, so no
//! later reader can obtain the pointer. Advancing from `e` to `e + 2`
//! requires every such reader to unpin in between (a thread pinned at
//! `< current` blocks `try_advance`), so garbage retired at `e` is freed
//! once the global epoch reaches `e + 2`.
//!
//! Unlike crossbeam there is no lock-free participant list — registration
//! goes through a plain mutex (once per thread). Garbage, however, is
//! **per-thread**: `defer_destroy` pushes into the calling thread's local
//! bag without touching any lock, and every `PINS_BETWEEN_COLLECT` pins
//! (or when the bag grows past `LOCAL_GARBAGE_THRESHOLD`) the thread
//! amortises a collection — a `try_lock`ed scan of the participant list
//! to advance the epoch, then lock-free frees from its own bag. Threads
//! therefore never serialise on a global garbage mutex; the only
//! cross-thread hand-off is the *orphan* bag a dying thread leaves
//! behind, adopted opportunistically by later collections.
//!
//! Like real crossbeam's thread-local bags, this trades reclamation
//! locality for a bounded hold: a thread that stays alive but stops
//! pinning keeps at most `LOCAL_GARBAGE_THRESHOLD` cooling retirees (its
//! last partial bag) unreclaimable until it pins again or exits. Size
//! the threshold, not correctness, bounds that hold.

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// A participant's published state: `INACTIVE`, or `epoch | ACTIVE`.
const ACTIVE: u64 = 1 << 63;
const INACTIVE: u64 = 0;

/// How many pins a thread performs between collection attempts.
const PINS_BETWEEN_COLLECT: usize = 64;

/// Local-bag size that triggers an immediate collection attempt.
const LOCAL_GARBAGE_THRESHOLD: usize = 64;

struct Participant {
    /// `INACTIVE`, or the epoch this thread pinned at, tagged with `ACTIVE`.
    state: AtomicU64,
}

struct Deferred {
    ptr: *mut u8,
    drop_fn: unsafe fn(*mut u8),
}

// SAFETY: a `Deferred` is only created inside `defer_destroy`, whose caller
// promises (per the crossbeam contract) that destroying the pointee on
// another thread is sound.
unsafe impl Send for Deferred {}

struct Global {
    epoch: AtomicU64,
    participants: Mutex<Vec<&'static Participant>>,
    /// Garbage bequeathed by exited threads; `orphan_count` lets live
    /// threads skip the lock entirely when there is nothing to adopt.
    orphans: Mutex<Vec<(u64, Deferred)>>,
    orphan_count: AtomicUsize,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: AtomicU64::new(0),
        participants: Mutex::new(Vec::new()),
        orphans: Mutex::new(Vec::new()),
        orphan_count: AtomicUsize::new(0),
    })
}

impl Global {
    /// Advances the global epoch if every active participant has been
    /// observed at the current one. Never blocks: if another thread holds
    /// the participant lock it is registering or collecting, and its
    /// progress serves ours.
    fn try_advance(&self) {
        let epoch = self.epoch.load(Ordering::SeqCst);
        let all_current = match self.participants.try_lock() {
            Ok(participants) => participants.iter().all(|p| {
                let s = p.state.load(Ordering::SeqCst);
                s & ACTIVE == 0 || s & !ACTIVE == epoch
            }),
            Err(_) => return,
        };
        if all_current {
            // A failed CAS means another thread advanced; that is progress too.
            let _ =
                self.epoch
                    .compare_exchange(epoch, epoch + 1, Ordering::SeqCst, Ordering::SeqCst);
        }
    }
}

/// Splits `bag` into (ripe, still-cooling) halves at epoch `now` and runs
/// the ripe destructors. The bag must not be borrowed while destructors
/// run — they are arbitrary user code and may pin or defer again.
fn free_ripe(bag: &mut Vec<(u64, Deferred)>, now: u64) {
    let mut ripe: Vec<Deferred> = Vec::new();
    bag.retain_mut(|(retired, d)| {
        if now >= *retired + 2 {
            ripe.push(Deferred {
                ptr: d.ptr,
                drop_fn: d.drop_fn,
            });
            false
        } else {
            true
        }
    });
    for d in ripe {
        // SAFETY: the epoch has advanced two steps past retirement, so
        // no pinned thread can still hold this pointer (see module docs).
        unsafe { (d.drop_fn)(d.ptr) };
    }
}

struct LocalHandle {
    participant: &'static Participant,
    /// Pin nesting depth; the participant state is only touched at depth 0/1.
    depth: Cell<usize>,
    /// Pins since the last collection attempt.
    pin_count: Cell<usize>,
    /// This thread's garbage bag: (retirement epoch, deferred destructor).
    garbage: RefCell<Vec<(u64, Deferred)>>,
}

impl LocalHandle {
    /// The per-thread amortised collection: try to advance the epoch,
    /// free the ripe part of our own bag (no locks), and opportunistically
    /// adopt orphans left by exited threads.
    fn collect(&self) {
        let g = global();
        g.try_advance();
        let now = g.epoch.load(Ordering::SeqCst);
        // Take the ripe entries out under the borrow, run destructors
        // after releasing it: a destructor may legitimately pin or defer
        // (nested `EpochCell`s), which would otherwise re-borrow.
        if let Ok(mut bag) = self.garbage.try_borrow_mut() {
            let mut taken = std::mem::take(&mut *bag);
            drop(bag);
            free_ripe(&mut taken, now);
            if !taken.is_empty() {
                self.garbage.borrow_mut().append(&mut taken);
            }
        }
        if g.orphan_count.load(Ordering::Relaxed) > 0 {
            if let Ok(mut orphans) = g.orphans.try_lock() {
                let mut taken = std::mem::take(&mut *orphans);
                g.orphan_count.store(0, Ordering::Relaxed);
                drop(orphans);
                free_ripe(&mut taken, now);
                if !taken.is_empty() {
                    let mut orphans = g.orphans.lock().unwrap();
                    g.orphan_count.fetch_add(taken.len(), Ordering::Relaxed);
                    orphans.append(&mut taken);
                }
            }
        }
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        {
            let mut participants = global().participants.lock().unwrap();
            if let Some(i) = participants
                .iter()
                .position(|p| std::ptr::eq(*p, self.participant))
            {
                participants.swap_remove(i);
            }
        }
        // Bequeath whatever is still cooling to the orphan bag; surviving
        // threads free it during their amortised collections.
        let mut bag = std::mem::take(&mut *self.garbage.borrow_mut());
        if !bag.is_empty() {
            let g = global();
            let mut orphans = g.orphans.lock().unwrap();
            g.orphan_count.fetch_add(bag.len(), Ordering::Relaxed);
            orphans.append(&mut bag);
        }
        // The participant's leaked allocation is intentionally small and
        // per-thread; reclaiming it would race with `try_advance`'s scan.
    }
}

thread_local! {
    static LOCAL: LocalHandle = {
        let participant: &'static Participant = Box::leak(Box::new(Participant {
            state: AtomicU64::new(INACTIVE),
        }));
        global().participants.lock().unwrap().push(participant);
        LocalHandle {
            participant,
            depth: Cell::new(0),
            pin_count: Cell::new(0),
            garbage: RefCell::new(Vec::new()),
        }
    };
}

/// An RAII guard keeping the current thread pinned. While any guard is
/// alive, pointers loaded from [`Atomic`]s remain valid.
#[derive(Debug)]
pub struct Guard {
    /// Guards are thread-bound (they reference thread-local pin state).
    _not_send: PhantomData<*mut ()>,
}

/// Pins the current thread and returns the guard that unpins it on drop.
pub fn pin() -> Guard {
    LOCAL.with(|local| {
        let depth = local.depth.get();
        local.depth.set(depth + 1);
        if depth == 0 {
            // Publish "pinned at the current epoch"; retry if the epoch
            // moved underneath us so try_advance never misses a pin.
            loop {
                let e = global().epoch.load(Ordering::SeqCst);
                local.participant.state.store(e | ACTIVE, Ordering::SeqCst);
                std::sync::atomic::fence(Ordering::SeqCst);
                if global().epoch.load(Ordering::SeqCst) == e {
                    break;
                }
            }
            let pins = local.pin_count.get() + 1;
            local.pin_count.set(pins);
            if pins % PINS_BETWEEN_COLLECT == 0 {
                local.collect();
            }
        }
    });
    Guard {
        _not_send: PhantomData,
    }
}

/// Runs one amortised collection on the calling thread: a non-blocking
/// epoch-advance attempt plus a sweep of the thread's own garbage bag and
/// any orphans. Exposed for tests and for embedders that want
/// deterministic reclamation points; never required for correctness.
pub fn flush() {
    LOCAL.with(|local| local.collect());
}

impl Guard {
    /// Schedules `shared`'s pointee for destruction once no pinned thread
    /// can reach it.
    ///
    /// # Safety
    ///
    /// The caller must guarantee the pointer was unlinked from every shared
    /// location before this call and is not retired twice.
    pub unsafe fn defer_destroy<T>(&self, shared: Shared<'_, T>) {
        if shared.ptr.is_null() {
            return;
        }
        unsafe fn drop_box<T>(p: *mut u8) {
            drop(Box::from_raw(p as *mut T));
        }
        // Read the retirement epoch *after* the caller's unlinking swap:
        // monotonicity then guarantees every reader that could hold the
        // pointer pinned at an epoch <= this one.
        let retired = global().epoch.load(Ordering::SeqCst);
        let deferred = Deferred {
            ptr: shared.ptr as *mut u8,
            drop_fn: drop_box::<T>,
        };
        // Lock-free hot path: retire into the calling thread's own bag
        // (the guard is thread-bound, so LOCAL is the retiring thread's).
        LOCAL.with(|local| {
            let len = {
                let mut bag = local.garbage.borrow_mut();
                bag.push((retired, deferred));
                bag.len()
            };
            if len >= LOCAL_GARBAGE_THRESHOLD {
                local.collect();
            }
        });
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        LOCAL.with(|local| {
            let depth = local.depth.get();
            local.depth.set(depth - 1);
            if depth == 1 {
                local.participant.state.store(INACTIVE, Ordering::SeqCst);
            }
        });
    }
}

/// An owned heap allocation, insertable into an [`Atomic`].
#[derive(Debug)]
pub struct Owned<T> {
    boxed: Box<T>,
}

impl<T> Owned<T> {
    /// Allocates `value` on the heap.
    pub fn new(value: T) -> Self {
        Owned {
            boxed: Box::new(value),
        }
    }
}

/// A pointer loaded from an [`Atomic`], valid for the guard lifetime `'g`.
pub struct Shared<'g, T> {
    ptr: *mut T,
    _marker: PhantomData<&'g T>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<T> std::fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shared({:p})", self.ptr)
    }
}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Shared {
            ptr: std::ptr::null_mut(),
            _marker: PhantomData,
        }
    }

    /// Whether this is the null pointer.
    pub fn is_null(&self) -> bool {
        self.ptr.is_null()
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and its pointee must outlive the pin —
    /// guaranteed when it was loaded from a live [`Atomic`] under the guard
    /// and only ever retired through [`Guard::defer_destroy`].
    pub unsafe fn deref(&self) -> &'g T {
        &*self.ptr
    }
}

/// An atomic pointer to a heap allocation, the shim of `epoch::Atomic`.
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

impl<T> std::fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Atomic({:p})", self.ptr.load(Ordering::Relaxed))
    }
}

impl<T> Atomic<T> {
    /// Allocates `value` and stores the pointer.
    pub fn new(value: T) -> Self {
        Atomic {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// Loads the current pointer under `guard`.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    /// Swaps in `new` (an [`Owned`] allocation or a [`Shared`] pointer such
    /// as [`Shared::null`]), returning the previous pointer under `guard`.
    pub fn swap<'g, P: Pointer<T>>(
        &self,
        new: P,
        ord: Ordering,
        _guard: &'g Guard,
    ) -> Shared<'g, T> {
        Shared {
            ptr: self.ptr.swap(new.into_ptr(), ord),
            _marker: PhantomData,
        }
    }
}

/// Pointer kinds storable into an [`Atomic`] (crossbeam's `Pointer` trait).
pub trait Pointer<T> {
    /// Consumes the handle, yielding the raw pointer to store.
    fn into_ptr(self) -> *mut T;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_ptr(self) -> *mut T {
        Box::into_raw(self.boxed)
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_ptr(self) -> *mut T {
        self.ptr
    }
}

/// Counter used by the tests below to observe destructions.
#[doc(hidden)]
pub static TEST_DROPS: AtomicUsize = AtomicUsize::new(0);

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering::SeqCst;
    use std::sync::Arc;

    /// Serializes the tests in this module: they all depend on the global
    /// epoch being able to advance, so a long-pinned thread in a parallel
    /// test would make reclamation-progress assertions flaky.
    static SERIAL: Mutex<()> = Mutex::new(());

    struct CountsDrop;
    impl Drop for CountsDrop {
        fn drop(&mut self) {
            TEST_DROPS.fetch_add(1, SeqCst);
        }
    }

    #[test]
    fn retired_values_are_eventually_destroyed() {
        let _serial = SERIAL.lock().unwrap();
        let a = Atomic::new(CountsDrop);
        let before = TEST_DROPS.load(SeqCst);
        for _ in 0..10_000 {
            let g = pin();
            let old = a.swap(Owned::new(CountsDrop), Ordering::AcqRel, &g);
            unsafe { g.defer_destroy(old) };
        }
        // Unpinned and with plenty of amortised collections behind us,
        // only the freshest epochs may still be cooling; a few explicit
        // flushes advance past them.
        flush();
        flush();
        flush();
        let freed = TEST_DROPS.load(SeqCst) - before;
        assert!(freed > 9_000, "only {freed} of 10000 retirees freed");
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let _serial = SERIAL.lock().unwrap();
        let val = Arc::new(42u64);
        let a = Atomic::new(Arc::clone(&val));
        let g_reader = pin();
        let shared = a.load(Ordering::Acquire, &g_reader);
        {
            let g = pin();
            let old = a.swap(Owned::new(Arc::new(0u64)), Ordering::AcqRel, &g);
            unsafe { g.defer_destroy(old) };
        }
        for _ in 0..10 {
            flush();
        }
        // The reader is still pinned at the retirement epoch, so the Arc
        // must not have been dropped: strong count still 2.
        assert_eq!(Arc::strong_count(&val), 2);
        let seen = unsafe { shared.deref() };
        assert_eq!(**seen, 42);
        drop(g_reader);
        for _ in 0..10 {
            flush();
        }
        assert_eq!(Arc::strong_count(&val), 1);
    }

    #[test]
    fn orphaned_garbage_is_adopted_from_exited_threads() {
        let _serial = SERIAL.lock().unwrap();
        let val = Arc::new(7u64);
        let a = Arc::new(Atomic::new(Arc::clone(&val)));
        {
            let a = Arc::clone(&a);
            std::thread::spawn(move || {
                let g = pin();
                let old = a.swap(Owned::new(Arc::new(0u64)), Ordering::AcqRel, &g);
                unsafe { g.defer_destroy(old) };
                // Thread exits with the retiree still cooling in its bag.
            })
            .join()
            .unwrap();
        }
        // The dead thread can no longer collect; the main thread's
        // amortised collections must adopt and free its orphans.
        for _ in 0..10 {
            flush();
        }
        assert_eq!(Arc::strong_count(&val), 1, "orphan never reclaimed");
    }

    #[test]
    fn retirement_and_collection_never_block_on_the_participant_lock() {
        // The scalability property the per-thread bags buy: a registered
        // thread can pin, retire, and run amortised collections while
        // another thread sits on the participant lock — collection only
        // try_locks it (the epoch simply doesn't advance meanwhile).
        let _serial = SERIAL.lock().unwrap();
        let _ = pin(); // ensure this thread is registered before jamming
        let _jam = global().participants.lock().unwrap();
        let a = Atomic::new(CountsDrop);
        for _ in 0..1_000 {
            let g = pin();
            let old = a.swap(Owned::new(CountsDrop), Ordering::AcqRel, &g);
            unsafe { g.defer_destroy(old) };
        }
        flush(); // must return without touching the jammed lock
    }

    #[test]
    fn concurrent_swap_load_stress() {
        let _serial = SERIAL.lock().unwrap();
        let a = Arc::new(Atomic::new(Arc::new(0u64)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let a = Arc::clone(&a);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(SeqCst) {
                    i += 1;
                    let g = pin();
                    let old = a.swap(Owned::new(Arc::new(i)), Ordering::AcqRel, &g);
                    unsafe { g.defer_destroy(old) };
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..200_000 {
                        let g = pin();
                        let v = **unsafe { a.load(Ordering::Acquire, &g).deref() };
                        assert!(v >= last, "value went backwards: {v} < {last}");
                        last = v;
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, SeqCst);
        writer.join().unwrap();
    }
}
