//! Minimal offline stand-in for the `crossbeam` facade crate.
//!
//! Provides the two pieces the workspace uses:
//!
//! * [`utils::Backoff`] — exponential spin/yield backoff.
//! * [`epoch`] — a small but *real* epoch-based reclamation scheme behind
//!   the `crossbeam-epoch` API (`pin`, `Atomic`, `Owned`, `Shared`,
//!   `Guard::defer_destroy`). `EpochCell`'s lock-free readers rely on it
//!   for memory safety, so this is not a leak-or-crash stub: deferred
//!   destructions are only executed once the global epoch has advanced
//!   two steps past the retirement epoch, which (as in crossbeam) proves
//!   no pinned reader can still hold the pointer.

pub mod epoch;
pub mod utils;
