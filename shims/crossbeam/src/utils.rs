//! Busy-wait backoff, mirroring `crossbeam_utils::Backoff`.

use std::cell::Cell;

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

/// Exponential backoff for spin loops: a few rounds of `spin_loop` hints,
/// then yields to the OS scheduler.
#[derive(Debug, Default)]
pub struct Backoff {
    step: Cell<u32>,
}

impl Backoff {
    /// Creates a backoff in its initial (hot-spin) state.
    pub fn new() -> Self {
        Backoff { step: Cell::new(0) }
    }

    /// Resets to the hot-spin state (call after making progress).
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Backs off without yielding the thread: `2^step` spin hints.
    pub fn spin(&self) {
        for _ in 0..1u32 << self.step.get().min(SPIN_LIMIT) {
            std::hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Backs off, yielding the thread once spinning has been exhausted.
    pub fn snooze(&self) {
        if self.step.get() <= SPIN_LIMIT {
            self.spin();
        } else {
            std::thread::yield_now();
            if self.step.get() <= YIELD_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }
    }

    /// Whether the caller should switch to real blocking (parking).
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}
