//! Collection strategies: only `vec` is provided.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::Range;

/// Strategy for `Vec`s with element strategy `S` and length drawn from a
/// range, mirroring `proptest::collection::vec`.
#[derive(Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Length specifications accepted by [`vec()`]: a range or an exact size
/// (mirroring `proptest::collection::SizeRange` conversions).
pub trait IntoSizeRange {
    /// The half-open range of admissible lengths.
    fn into_range(self) -> Range<usize>;
}

impl IntoSizeRange for Range<usize> {
    fn into_range(self) -> Range<usize> {
        self
    }
}

impl IntoSizeRange for usize {
    fn into_range(self) -> Range<usize> {
        self..self + 1
    }
}

/// Creates a strategy producing vectors whose length is drawn from `len`
/// and whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
    VecStrategy {
        element,
        len: len.into_range(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        let n = if self.len.is_empty() {
            self.len.start
        } else {
            rng.random_range(self.len.start..self.len.end)
        };
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
