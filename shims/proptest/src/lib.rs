//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the fcds test suites use:
//!
//! * the [`proptest!`] macro over functions whose arguments are drawn
//!   `name in strategy` pairs, with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * range strategies (`0u64..100`, `1u32..=64`), [`any::<bool>()`](any),
//!   and [`prop::collection::vec`](collection::vec);
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: cases are generated from a deterministic per-test seed (the hash
//! of the test name), so failures reproduce on re-run. On failure the
//! failing case index is printed before the panic propagates.

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// Prelude mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop` path alias (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Returns the standard strategy for `T` (only `bool` and the primitive
/// integer/float full-domain draws are provided).
pub fn any<T: strategy::ArbitraryValue>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// Deterministic per-test RNG: seeded from the test's name so failures
/// reproduce, while distinct tests explore distinct streams.
#[doc(hidden)]
pub fn rng_for_test(test_name: &str) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h)
}

/// Runs `cases` samples of `body`, printing the failing case index if one
/// panics. The machinery behind [`proptest!`]; not public API.
#[doc(hidden)]
pub fn run_cases(test_name: &str, cases: u32, mut body: impl FnMut(&mut SmallRng)) {
    let mut rng = rng_for_test(test_name);
    for case in 0..cases {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest shim: test `{test_name}` failed at case {case} of {cases} \
                 (deterministic seed; re-running reproduces it)"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// The `proptest!` macro: expands each `fn name(arg in strategy, ..) {..}`
/// into a plain test function that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), cfg.cases, |rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)+
                $body
            });
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in 1u8..=3, z in 0usize..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert!(z < 5);
        }

        #[test]
        fn vec_strategy_length_and_elements(v in prop::collection::vec(0u32..100, 2..10)) {
            prop_assert!((2..10).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn any_bool_draws(b in any::<bool>()) {
            prop_assert!(u8::from(b) <= 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn cases_are_deterministic_per_test() {
        let mut a = crate::rng_for_test("some_test");
        let mut b = crate::rng_for_test("some_test");
        let mut c = crate::rng_for_test("other_test");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| c.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn failing_case_reports_index() {
        let err = std::panic::catch_unwind(|| {
            crate::run_cases("always_fails", 8, |_| panic!("boom"));
        });
        assert!(err.is_err());
    }
}
