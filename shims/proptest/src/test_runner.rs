//! Test-runner configuration.

/// Run configuration; only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// Real proptest defaults to 256; the shim keeps that.
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}
