//! Value-generation strategies (no shrinking).

use rand::rngs::SmallRng;
use rand::{Rng, SampleUniform, Standard};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A source of random values of one type; the shim's `proptest::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        rng.random_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        rng.random_range(*self.start()..=*self.end())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Strategy produced by [`any`](crate::any): the type's full standard
/// distribution.
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Any<T> {
    pub(crate) fn new() -> Self {
        Any(PhantomData)
    }
}

/// Types `any::<T>()` can produce (the shim's `Arbitrary`).
pub trait ArbitraryValue: Standard {}
impl<T: Standard> ArbitraryValue for T {}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        rng.random()
    }
}
