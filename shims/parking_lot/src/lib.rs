//! Minimal offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` / `std::sync::RwLock` behind the
//! non-poisoning `parking_lot` API the workspace uses (`lock()`,
//! `read()`, `write()`, `try_lock()` returning guards directly, no
//! `Result`). Poisoning is translated into a panic propagation: if a
//! thread panicked while holding the lock the next locker panics too,
//! which is the behaviour the lock-free tests expect anyway.

use std::sync::{self, TryLockError};

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|_| panic!("lock holder panicked"))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::WouldBlock) => None,
            Err(TryLockError::Poisoned(_)) => panic!("lock holder panicked"),
        }
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(|_| panic!("lock holder panicked"))
    }
}

/// Non-poisoning readers-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(|_| panic!("lock holder panicked"))
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(|_| panic!("lock holder panicked"))
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(|_| panic!("lock holder panicked"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_counter() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 40_000);
    }

    #[test]
    fn rwlock_readers_see_writes() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
