//! # fcds — Fast Concurrent Data Sketches
//!
//! A Rust reproduction of *Fast Concurrent Data Sketches* (Rinberg,
//! Spiegelman, Bortnikov, Hillel, Keidar, Rhodes, Serviansky; PODC 2019,
//! arXiv:1902.10995).
//!
//! This facade crate re-exports the three library crates of the workspace:
//!
//! * [`sketches`] — sequential sketch substrate: Θ sketches (KMV and
//!   quick-select), the Quantiles sketch, HLL, reservoir sampling, and the
//!   MurmurHash3 hash the sketches are built on.
//! * [`core`] — the paper's contribution: the generic strongly-linearisable
//!   concurrent sketch framework (`ParSketch`/`OptParSketch`), generalised
//!   to a K-way sharded engine with pluggable propagation backends
//!   (dedicated thread per shard, or threadless writer-assisted); its Θ,
//!   Quantiles, HLL and frequency instantiations; and the lock-based
//!   baseline.
//! * [`relaxation`] — the relaxed-consistency framework: operation
//!   histories, the r-relaxation checker (Definition 2), and the
//!   strong/weak adversary error analysis of Section 6.
//!
//! ## Examples
//!
//! Seven runnable examples live in `examples/`:
//! `quickstart` (multi-writer distinct counting), `unique_users`
//! (web analytics with Θ set algebra), `latency_quantiles` (live
//! percentile dashboard), `network_monitor` (concurrent HLL),
//! `trending_topics` (concurrent Misra–Gries heavy hitters),
//! `custom_sketch` (parallelising your own sketch through the
//! composable interface), and `relaxation_demo` (Definition 2 and
//! Theorem 1, validated live).
//!
//! ## Quick start
//!
//! ```
//! use fcds::core::theta::ConcurrentThetaBuilder;
//!
//! let sketch = ConcurrentThetaBuilder::new()
//!     .lg_k(12)
//!     .writers(2)
//!     .max_concurrency_error(0.04)
//!     .build()
//!     .unwrap();
//!
//! let handles: Vec<_> = (0..2)
//!     .map(|t| {
//!         let mut w = sketch.writer();
//!         std::thread::spawn(move || {
//!             // One call per chunk (`update_batch`) runs the fused
//!             // batched fast path; `update` works item-at-a-time.
//!             let items: Vec<u64> = (0..100_000u64).map(|i| i * 2 + t).collect();
//!             for chunk in items.chunks(1024) {
//!                 w.update_batch(chunk);
//!             }
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! let est = sketch.estimate();
//! assert!((est - 200_000.0).abs() / 200_000.0 < 0.1);
//! ```

pub use fcds_core as core;
pub use fcds_relaxation as relaxation;
pub use fcds_sketches as sketches;

// The engine-level configuration surface, re-exported flat: these are
// the types every embedder touches regardless of which sketch they
// instantiate (shard count, propagation backend, error budget).
pub use fcds_core::{
    ConcurrencyConfig, DedicatedThreadBackend, FlushError, PropagationBackend,
    PropagationBackendKind, WriterAssistedBackend,
};

// The wire/merge tier, re-exported flat: sketch on any node, emit a
// versioned image, merge the images anywhere. These are the types every
// distributed embedder touches regardless of sketch family.
pub use fcds_sketches::wire::{
    merge_wire_images, SketchFamily, WireDecode, WireEncode, WireHeader, WireMerge,
};
pub use fcds_sketches::WireError;

// The zero-copy fan-in tier: borrowed views over raw images, multiway
// merge kernels, and the reusable scratch arena that makes a warm
// coordinator loop allocation-free. `peek` classifies an image from its
// first 16 bytes for server-side routing.
pub use fcds_sketches::wire::{
    hll_multiway_merge, hll_multiway_merge_into, ladder_multiway_concat, mg_multiway_merge, peek,
    theta_multiway_union, theta_multiway_union_into, HllFanin, HllWireView, LadderWireView,
    MergeScratch, MgWireView, PeekedHeader, ThetaFanin, ThetaWireView,
};

// The family-generic engine tier: one builder and one object-safe
// engine trait across all four concurrent sketches. This is what the
// multi-stream server's per-key registry is built on, and the
// replacement for the four per-family builders (which remain as thin
// deprecated shims for one release).
pub use fcds_core::{
    EngineBuilder, EngineWriter, Family, FrequencyFamily, HllFamily, QuantilesFamily, StreamEngine,
    ThetaFamily, WireImage,
};
