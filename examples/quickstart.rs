//! Quickstart: count distinct items from multiple threads and query in
//! real time.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fcds::core::theta::ConcurrentThetaBuilder;
use std::time::Instant;

fn main() {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 2_000_000;

    // k = 4096, e = 0.04: the paper's default configuration. The builder
    // derives the eager-propagation limit (2/e² = 1250) and the local
    // buffer size b from these.
    let sketch = ConcurrentThetaBuilder::new()
        .lg_k(12)
        .writers(WRITERS as usize)
        .max_concurrency_error(0.04)
        .build()
        .expect("valid configuration");

    println!(
        "concurrent Θ sketch: k = {}, relaxation r = 2Nb = {}",
        sketch.k(),
        sketch.relaxation()
    );

    let start = Instant::now();
    std::thread::scope(|s| {
        // One writer handle per ingestion thread, feeding through the
        // batched fast path: one `update_batch` call per chunk hoists
        // the phase/filter/hint checks out of the per-item loop (use
        // `w.update(item)` for item-at-a-time sources — same result).
        const BATCH: u64 = 1024;
        for t in 0..WRITERS {
            let mut w = sketch.writer();
            s.spawn(move || {
                let (base, end) = (t * PER_WRITER, (t + 1) * PER_WRITER);
                let mut batch = Vec::with_capacity(BATCH as usize);
                let mut next = base;
                while next < end {
                    batch.clear();
                    batch.extend(next..end.min(next + BATCH)); // disjoint ranges: all distinct
                    w.update_batch(&batch);
                    next += batch.len() as u64;
                }
            });
        }
        // Queries run concurrently with ingestion — no locks, no waiting.
        s.spawn(|| {
            for _ in 0..10 {
                std::thread::sleep(std::time::Duration::from_millis(20));
                println!("  live estimate: {:>12.0}", sketch.estimate());
            }
        });
    });

    let elapsed = start.elapsed();
    sketch.quiesce();
    let total = (WRITERS * PER_WRITER) as f64;
    let est = sketch.estimate();
    println!("\ningested {total:.0} distinct items in {elapsed:.2?}");
    println!(
        "throughput: {:.1} M updates/s",
        total / elapsed.as_secs_f64() / 1e6
    );
    println!(
        "final estimate: {est:.0} (true {total:.0}, error {:+.2}%)",
        (est / total - 1.0) * 100.0
    );
    println!(
        "configured error bound: ±{:.2}%",
        sketch.error_bound() * 100.0
    );
}
