//! Quickstart: count distinct items from multiple threads and query in
//! real time.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fcds::core::theta::ConcurrentThetaBuilder;
use std::time::Instant;

fn main() {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 2_000_000;

    // k = 4096, e = 0.04: the paper's default configuration. The builder
    // derives the eager-propagation limit (2/e² = 1250) and the local
    // buffer size b from these.
    let sketch = ConcurrentThetaBuilder::new()
        .lg_k(12)
        .writers(WRITERS as usize)
        .max_concurrency_error(0.04)
        .build()
        .expect("valid configuration");

    println!(
        "concurrent Θ sketch: k = {}, relaxation r = 2Nb = {}",
        sketch.k(),
        sketch.relaxation()
    );

    let start = Instant::now();
    std::thread::scope(|s| {
        // One writer handle per ingestion thread.
        for t in 0..WRITERS {
            let mut w = sketch.writer();
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    w.update(t * PER_WRITER + i); // disjoint ranges: all distinct
                }
            });
        }
        // Queries run concurrently with ingestion — no locks, no waiting.
        s.spawn(|| {
            for _ in 0..10 {
                std::thread::sleep(std::time::Duration::from_millis(20));
                println!("  live estimate: {:>12.0}", sketch.estimate());
            }
        });
    });

    let elapsed = start.elapsed();
    sketch.quiesce();
    let total = (WRITERS * PER_WRITER) as f64;
    let est = sketch.estimate();
    println!("\ningested {total:.0} distinct items in {elapsed:.2?}");
    println!(
        "throughput: {:.1} M updates/s",
        total / elapsed.as_secs_f64() / 1e6
    );
    println!(
        "final estimate: {est:.0} (true {total:.0}, error {:+.2}%)",
        (est / total - 1.0) * 100.0
    );
    println!(
        "configured error bound: ±{:.2}%",
        sketch.error_bound() * 100.0
    );
}
