//! Real-time web analytics: distinct-user counting over several event
//! feeds, with per-feed sketches combined by Θ set operations.
//!
//! This is the workload the paper's introduction motivates: streams
//! "arise from multiple real-world sources and are collected over a
//! network with variable delays", queries arrive while data is ingested,
//! and the system must answer them without stopping the feeds.
//!
//! ```sh
//! cargo run --release --example unique_users
//! ```

use fcds::core::theta::ConcurrentThetaBuilder;
use fcds::sketches::theta::{ThetaANotB, ThetaIntersection, ThetaRead, ThetaUnion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 9001;

/// Simulates one region's event feed: `events` page views from a heavy-
/// tailed population of `population` users (some users visit repeatedly).
fn feed_region(
    sketch: &fcds::core::theta::ConcurrentThetaSketch,
    region: u64,
    population: u64,
    events: u64,
    threads: usize,
) {
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let mut w = sketch.writer();
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(region * 31 + t);
                for _ in 0..events / threads as u64 {
                    // Zipf-ish skew: 80% of traffic from 20% of users.
                    let user = if rng.random_bool(0.8) {
                        rng.random_range(0..population / 5)
                    } else {
                        rng.random_range(population / 5..population)
                    };
                    w.update(region * 1_000_000_000 + user);
                }
            });
        }
    });
    sketch.quiesce();
}

fn main() {
    let regions = ["us-east", "eu-west"];
    let populations = [400_000u64, 250_000];
    let events = 3_000_000u64;

    // One concurrent sketch per region, each fed by two threads.
    let sketches: Vec<_> = regions
        .iter()
        .map(|_| {
            ConcurrentThetaBuilder::new()
                .lg_k(12)
                .seed(SEED)
                .writers(2)
                .max_concurrency_error(0.04)
                .build()
                .expect("build sketch")
        })
        .collect();

    println!("ingesting {events} events per region…");
    std::thread::scope(|s| {
        for (i, sketch) in sketches.iter().enumerate() {
            s.spawn(move || feed_region(sketch, i as u64, populations[i], events, 2));
        }
    });

    for (name, sketch) in regions.iter().zip(&sketches) {
        println!(
            "  {name:<8} distinct users ≈ {:>10.0}  (true ≤ {})",
            sketch.estimate(),
            populations[regions.iter().position(|r| r == name).unwrap()]
        );
    }

    // Compact images are mergeable summaries: global questions become set
    // algebra. (Regions use disjoint user-id spaces here, so we also
    // demonstrate an overlapping cohort.)
    let us = sketches[0].compact();
    let eu = sketches[1].compact();

    let mut union = ThetaUnion::new(12, SEED).expect("union gadget");
    union.update(&us).expect("same seed");
    union.update(&eu).expect("same seed");
    println!("\nglobal distinct users ≈ {:.0}", union.result().estimate());

    let mut ix = ThetaIntersection::new(SEED);
    ix.update(&us).expect("same seed");
    ix.update(&eu).expect("same seed");
    println!(
        "users active in both regions ≈ {:.0} (disjoint id spaces ⇒ ~0)",
        ix.result().expect("non-identity").estimate()
    );

    let only_us = ThetaANotB::new().compute(&us, &eu).expect("same seed");
    println!("users only in us-east ≈ {:.0}", only_us.estimate());

    // Serialise a compact image as a downstream system would.
    let bytes = us.to_bytes();
    let back = fcds::sketches::theta::CompactThetaSketch::from_bytes(&bytes).expect("round trip");
    println!(
        "\ncompact us-east image: {} bytes, estimate preserved: {}",
        bytes.len(),
        (back.estimate() - us.estimate()).abs() < 1e-9
    );
}
