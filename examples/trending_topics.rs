//! Trending topics: a concurrent Misra–Gries heavy-hitters sketch over a
//! skewed "social media" stream, queried live — the classic frequent-
//! items use case, running on the paper's framework.
//!
//! ```sh
//! cargo run --release --example trending_topics
//! ```

use fcds::core::frequency::ConcurrentFrequencyBuilder;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const TOPICS: &[&str] = &[
    "concurrency",
    "sketches",
    "rust",
    "linearizability",
    "streaming",
];

fn main() {
    const FEEDS: usize = 4;
    const EVENTS_PER_FEED: u64 = 500_000;

    let sketch = ConcurrentFrequencyBuilder::new()
        .k(64)
        .writers(FEEDS)
        .build::<String>()
        .expect("valid configuration");

    println!(
        "ingesting {} events on {FEEDS} feeds…",
        FEEDS as u64 * EVENTS_PER_FEED
    );
    std::thread::scope(|s| {
        for f in 0..FEEDS {
            let mut w = sketch.writer();
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(f as u64);
                for i in 0..EVENTS_PER_FEED {
                    // 30% of traffic hits the named topics (Zipf-ish),
                    // the rest is a long tail of one-off hashtags.
                    let topic = if rng.random_bool(0.3) {
                        let idx = (rng.random::<f64>().powi(2) * TOPICS.len() as f64) as usize;
                        TOPICS[idx.min(TOPICS.len() - 1)].to_string()
                    } else {
                        format!("tag-{f}-{i}")
                    };
                    w.update(topic);
                }
                w.flush().unwrap();
            });
        }
        // A live dashboard thread.
        s.spawn(|| {
            for _ in 0..5 {
                std::thread::sleep(std::time::Duration::from_millis(100));
                let snap = sketch.snapshot();
                if snap.n == 0 {
                    continue;
                }
                let top = snap.heavy_hitters(snap.n / 50);
                let names: Vec<String> = top
                    .iter()
                    .take(3)
                    .map(|(t, e)| format!("{t} (≥{})", e.lower_bound))
                    .collect();
                println!("  n={:>8}: trending {}", snap.n, names.join(", "));
            }
        });
    });
    sketch.quiesce();

    let snap = sketch.snapshot();
    let threshold = snap.n / 100;
    println!(
        "\nfinal heavy hitters (threshold = 1% of {} events):",
        snap.n
    );
    let candidates = snap.heavy_hitters(threshold);
    let mut guaranteed = 0;
    for (topic, est) in &candidates {
        if est.surely_above(threshold) {
            guaranteed += 1;
            println!(
                "  {topic:<16} count ∈ [{}, {}]  (guaranteed > threshold)",
                est.lower_bound, est.upper_bound
            );
        }
    }
    println!(
        "  … plus {} tail items that only *might* exceed the threshold",
        candidates.len() - guaranteed
    );
    println!(
        "\nerror slack: any unlisted topic occurred ≤ {} times (bound n/(k+1))",
        snap.max_error
    );
}
