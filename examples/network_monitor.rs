//! Network-wide flow monitoring: distinct flows per port with concurrent
//! HLL sketches (the framework's third instantiation), cross-checked by a
//! concurrent Θ sketch.
//!
//! Anomaly (e.g., port-scan) detection via distinct counting is one of
//! the sketch applications the paper cites (Elastic Sketch, SIGCOMM'18).
//!
//! ```sh
//! cargo run --release --example network_monitor
//! ```

use fcds::core::hll::ConcurrentHllBuilder;
use fcds::core::theta::ConcurrentThetaBuilder;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A synthetic 5-tuple-ish flow key: 24 bits of src, 24 of dst, 16 of
/// port — no field overlap, so distinct (src, dst, port) triples map to
/// distinct keys.
fn flow_key(src: u32, dst: u32, port: u16) -> u64 {
    ((src as u64 & 0xFF_FFFF) << 40) | ((dst as u64 & 0xFF_FFFF) << 16) | port as u64
}

fn main() {
    const CAPTURE_THREADS: usize = 4;
    const PACKETS_PER_THREAD: u64 = 1_000_000;

    // Port 443: normal traffic — many packets, moderate flow count.
    // Port 23: a simulated scan — every packet is a new flow.
    let https = ConcurrentHllBuilder::new()
        .lg_m(12)
        .writers(CAPTURE_THREADS)
        .build()
        .expect("build HLL");
    let telnet = ConcurrentHllBuilder::new()
        .lg_m(12)
        .writers(CAPTURE_THREADS)
        .build()
        .expect("build HLL");
    // A Θ sketch over the same scan traffic for cross-validation.
    let telnet_theta = ConcurrentThetaBuilder::new()
        .lg_k(12)
        .writers(CAPTURE_THREADS)
        .build()
        .expect("build theta");

    println!(
        "capturing {} packets on {} threads…",
        CAPTURE_THREADS as u64 * PACKETS_PER_THREAD * 2,
        CAPTURE_THREADS
    );
    std::thread::scope(|s| {
        for t in 0..CAPTURE_THREADS {
            let mut w_https = https.writer();
            let mut w_telnet = telnet.writer();
            let mut w_theta = telnet_theta.writer();
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t as u64);
                for i in 0..PACKETS_PER_THREAD {
                    // Normal: 50k hot flows, revisited constantly.
                    let f = flow_key(rng.random_range(0..50_000), 10, 443);
                    w_https.update(f);
                    // Scan: unique (src, dst) per packet.
                    let scan = flow_key(t as u32, i as u32, 23);
                    w_telnet.update(scan);
                    w_theta.update(scan);
                }
            });
        }
    });
    https.quiesce();
    telnet.quiesce();
    telnet_theta.quiesce();

    let https_flows = https.estimate();
    let telnet_flows = telnet.estimate();
    println!("\nport 443: ≈ {https_flows:>10.0} distinct flows (true 50,000)");
    println!(
        "port  23: ≈ {telnet_flows:>10.0} distinct flows (true {})",
        CAPTURE_THREADS as u64 * PACKETS_PER_THREAD
    );
    println!(
        "cross-check (Θ sketch on port 23): ≈ {:>10.0}",
        telnet_theta.estimate()
    );

    // Alert logic: flows-per-packet ratio near 1 ⇒ scan-like.
    let packets = (CAPTURE_THREADS as u64 * PACKETS_PER_THREAD) as f64;
    let ratio = telnet_flows / packets;
    println!(
        "\nport 23 flow/packet ratio = {ratio:.3} → {}",
        if ratio > 0.5 {
            "ALERT: scan-like traffic"
        } else {
            "normal"
        }
    );

    // Off-line union across ports via the sequential HLL merge.
    let mut all = https.registers();
    all.merge(&telnet.registers()).expect("same configuration");
    println!(
        "total distinct flows across monitored ports ≈ {:.0}",
        all.estimate()
    );
}
