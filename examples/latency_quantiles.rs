//! Live service-latency percentiles: a concurrent Quantiles sketch fed by
//! several "request handler" threads while a dashboard thread reads p50 /
//! p95 / p99 in real time.
//!
//! ```sh
//! cargo run --release --example latency_quantiles
//! ```

use fcds::core::quantiles::ConcurrentQuantilesBuilder;
use fcds::sketches::quantiles::TotalF64;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};

/// Log-normal-ish latency in milliseconds: a 2 ms body with a heavy tail.
fn sample_latency(rng: &mut SmallRng) -> f64 {
    let base = 2.0 + rng.random::<f64>() * 3.0;
    if rng.random_bool(0.02) {
        base + rng.random::<f64>() * 200.0 // slow outliers
    } else {
        base
    }
}

fn main() {
    const HANDLERS: usize = 4;
    const REQUESTS_PER_HANDLER: u64 = 500_000;

    let sketch = ConcurrentQuantilesBuilder::new()
        .k(128)
        .writers(HANDLERS)
        .max_concurrency_error(0.04)
        .build::<TotalF64>()
        .expect("valid configuration");
    println!(
        "concurrent Quantiles sketch: k = {}, relaxation r = {}, ε_r bound shrinks as n grows",
        sketch.k(),
        sketch.relaxation()
    );

    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let handlers: Vec<_> = (0..HANDLERS)
            .map(|h| {
                let mut w = sketch.writer();
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(h as u64);
                    for _ in 0..REQUESTS_PER_HANDLER {
                        w.update(TotalF64(sample_latency(&mut rng)));
                    }
                })
            })
            .collect();
        // Dashboard: wait-free snapshot reads, mutually consistent within
        // one snapshot.
        let (sketch_ref, done_ref) = (&sketch, &done);
        s.spawn(move || {
            while !done_ref.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(50));
                let snap = sketch_ref.snapshot();
                if snap.n() == 0 {
                    continue;
                }
                let q = |phi: f64| snap.quantile(phi).map_or(f64::NAN, |v| v.0);
                println!(
                    "  n={:>8}  p50={:5.2}ms  p95={:5.2}ms  p99={:6.2}ms",
                    snap.n(),
                    q(0.50),
                    q(0.95),
                    q(0.99)
                );
            }
        });
        // Writer threads finish (flushing their partial buffers on
        // drop), then stop the dashboard — the flag must flip *inside*
        // the scope or the scope's implicit join would wait on the
        // dashboard forever.
        for h in handlers {
            h.join().expect("handler thread panicked");
        }
        done.store(true, Ordering::Relaxed);
    });

    sketch.quiesce();
    let snap = sketch.snapshot();
    let q = |phi: f64| snap.quantile(phi).map_or(f64::NAN, |v| v.0);
    println!("\nfinal ({} requests):", snap.n());
    println!("  p50 = {:.2} ms (body is 2–5 ms)", q(0.50));
    println!("  p95 = {:.2} ms", q(0.95));
    println!("  p99 = {:.2} ms (tail outliers reach ~200 ms)", q(0.99));
    println!(
        "  SLA check: rank(10ms) = {:.3} of requests under 10 ms",
        snap.rank(&TotalF64(10.0))
    );
    println!("  rank error bound ε_r ≈ {:.4}", sketch.relaxed_epsilon());
}
