//! Bring your own sketch: parallelising a custom summary with the generic
//! framework (§5's composable-sketch interface).
//!
//! The sketch here is deliberately tiny — a stream-minimum tracker — so
//! that every piece of the interface is visible:
//!
//! * the **global** side implements [`GlobalSketch`]: merge, direct
//!   (eager) update, snapshot publication through an atomic view, and
//!   `calcHint`;
//! * the **local** side implements [`LocalSketch`]: buffering and the
//!   static `shouldAdd` pre-filter. Like Θ's, the min-tracker's hint is
//!   *monotone* (the minimum only decreases), so filtering against a
//!   stale hint is always safe — this is the property §5.1's Θ argument
//!   relies on, reproduced in miniature.
//!
//! ```sh
//! cargo run --release --example custom_sketch
//! ```

use fcds::core::composable::{GlobalSketch, LocalSketch};
use fcds::core::sync::AtomicF64;
use fcds::core::{ConcurrencyConfig, ConcurrentSketch};

/// Global state: the exact minimum of everything merged so far.
#[derive(Debug, Default)]
struct MinGlobal {
    min: Option<u64>,
    n: u64,
}

/// Local state: a buffer of candidate minima (pre-filtered by the hint).
#[derive(Debug, Default)]
struct MinLocal {
    items: Vec<u64>,
}

impl LocalSketch for MinLocal {
    type Item = u64;
    /// The hint is the global minimum (`u64::MAX` hint encoding is fine —
    /// the `HintCodec` for `u64` requires non-zero, and a minimum of 0
    /// would be encoded as... 0. Shift by one to stay non-zero.)
    type Hint = u64;

    fn update(&mut self, item: u64) {
        self.items.push(item);
    }

    /// Drop anything that cannot improve the minimum. The hint is the
    /// global min + 1 (shifted to keep the encoding non-zero), so the
    /// filter is `item < hint - 1 + 1 = hint`.
    fn should_add(hint: u64, item: &u64) -> bool {
        *item < hint
    }

    fn clear(&mut self) {
        self.items.clear();
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

impl GlobalSketch for MinGlobal {
    type Local = MinLocal;
    /// Published view: the current minimum as an atomic f64 (NaN = empty).
    type View = AtomicF64;
    type Snapshot = Option<u64>;

    fn new_local(&self) -> MinLocal {
        MinLocal::default()
    }

    fn new_view(&self) -> AtomicF64 {
        AtomicF64::new(f64::NAN)
    }

    fn merge(&mut self, local: &mut MinLocal) {
        for v in local.items.drain(..) {
            self.n += 1;
            if self.min.is_none_or(|m| v < m) {
                self.min = Some(v);
            }
        }
    }

    fn update_direct(&mut self, item: u64) {
        self.n += 1;
        if self.min.is_none_or(|m| item < m) {
            self.min = Some(item);
        }
    }

    fn publish(&self, view: &AtomicF64) {
        view.store(self.min.map_or(f64::NAN, |m| m as f64));
    }

    fn snapshot(view: &AtomicF64) -> Option<u64> {
        let v = view.load();
        if v.is_nan() {
            None
        } else {
            Some(v as u64)
        }
    }

    /// Hint = current min, shifted by one so the encoding is non-zero
    /// even when the minimum is 0 (`u64::MAX` when empty: filter nothing).
    fn calc_hint(&self) -> u64 {
        self.min.map_or(u64::MAX, |m| m.saturating_add(1).max(1))
    }

    fn stream_len(&self) -> u64 {
        self.n
    }
}

fn main() {
    let config = ConcurrencyConfig {
        writers: 4,
        max_concurrency_error: 1.0, // no eager phase: show the relaxed path
        ..Default::default()
    };
    println!(
        "custom min-tracker through the generic engine: N = {}, b = {}, r = 2Nb = {}",
        config.writers,
        config.buffer_size(),
        config.relaxation()
    );
    let sketch = ConcurrentSketch::start(MinGlobal::default(), config).expect("valid config");

    // Four writers race downwards from different offsets; the true
    // minimum of the whole stream is exactly 3.
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let mut w = sketch.writer();
            s.spawn(move || {
                for i in (0..500_000u64).rev() {
                    w.update(4 * i + t + 3);
                }
                w.flush().unwrap();
            });
        }
        s.spawn(|| {
            for _ in 0..6 {
                std::thread::sleep(std::time::Duration::from_millis(10));
                println!("  live minimum: {:?}", sketch.snapshot());
            }
        });
    });
    sketch.quiesce();
    let min = sketch.snapshot();
    println!("\nfinal minimum: {min:?} (true: Some(3))");
    assert_eq!(min, Some(3));
    println!(
        "the shouldAdd filter dropped every update ≥ the running minimum on the writer threads."
    );
}
