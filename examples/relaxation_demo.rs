//! Demonstrates the paper's correctness story end to end:
//!
//! 1. Definition 2 — a concrete 1-relaxation of a history (Figure 2);
//! 2. Theorem 1 — live queries against a concurrent Θ sketch validated by
//!    the r-relaxation checker with `r = 2Nb`;
//! 3. what the checker catches: a deliberately out-of-bound observation.
//!
//! ```sh
//! cargo run --release --example relaxation_demo
//! ```

use fcds::core::theta::ConcurrentThetaBuilder;
use fcds::relaxation::checker::{ThetaChecker, ThetaObservation};
use fcds::relaxation::history::{History, Op};
use fcds::sketches::hash::Hashable;
use fcds::sketches::theta::normalize_hash;

const SEED: u64 = 9001;

fn figure2_demo() {
    println!("— Definition 2 (Figure 2): r-relaxation of a history —");
    // H′: update(1) · query() · update(2); in H the query was overtaken
    // by update(1).
    let h_prime = History::new()
        .with(1, Op::Update(1))
        .with(10, Op::Query(0))
        .with(2, Op::Update(2));
    let h = History::new()
        .with(10, Op::Query(0))
        .with(1, Op::Update(1))
        .with(2, Op::Update(2));
    println!(
        "  H  is a 1-relaxation of H′: {}",
        h.is_r_relaxation_of(&h_prime, 1)
    );
    println!(
        "  H  is a 0-relaxation of H′: {}",
        h.is_r_relaxation_of(&h_prime, 0)
    );
}

fn main() {
    figure2_demo();

    println!("\n— Theorem 1: validating a live concurrent Θ sketch —");
    let writers = 2usize;
    let sketch = ConcurrentThetaBuilder::new()
        .lg_k(8) // k = 256 keeps the demo's numbers readable
        .seed(SEED)
        .writers(writers)
        .max_concurrency_error(1.0) // no eager phase: pure relaxed mode
        .build()
        .expect("build sketch");
    let r = sketch.relaxation();
    let checker = ThetaChecker::new(sketch.k(), r);
    println!(
        "  k = {}, N = {writers}, b = {}, r = 2Nb = {r}",
        sketch.k(),
        r / (2 * writers as u64)
    );

    // Ingest a known stream in chunks; after each chunk, flush + quiesce
    // and validate the published snapshot against the exact prefix.
    let total: u64 = 100_000;
    let stream: Vec<u64> = (0..total)
        .map(|i| normalize_hash(i.hash_with_seed(SEED)))
        .collect();

    let mut w1 = sketch.writer();
    let mut w2 = sketch.writer();
    let mut fed = 0usize;
    for chunk in stream.chunks(20_000) {
        for (i, &h) in chunk.iter().enumerate() {
            if i % 2 == 0 {
                w1.update_hash(h);
            } else {
                w2.update_hash(h);
            }
        }
        fed += chunk.len();
        w1.flush().unwrap();
        w2.flush().unwrap();
        sketch.quiesce();
        let snap = sketch.snapshot();
        let obs = ThetaObservation {
            theta: snap.theta,
            retained: snap.retained,
            estimate: snap.estimate,
        };
        match checker.check_at(&stream, fed, &obs) {
            Ok(()) => println!(
                "  after {fed:>6} updates: estimate {:>9.0} — admissible under r = {r} ✓",
                snap.estimate
            ),
            Err(v) => println!("  after {fed:>6} updates: VIOLATION: {v}"),
        }
    }

    println!("\n— What a violation looks like —");
    let snap = sketch.snapshot();
    let tampered = ThetaObservation {
        theta: snap.theta,
        retained: snap.retained + r + 100, // more samples than can exist
        estimate: (snap.retained + r + 100) as f64 / snap.theta_fraction(),
    };
    match checker.check_at(&stream, stream.len(), &tampered) {
        Ok(()) => println!("  unexpectedly admissible?!"),
        Err(v) => println!("  checker rejects tampered snapshot: {v}"),
    }
}
